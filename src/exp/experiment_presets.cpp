// Built-in experiment presets: every figure, table and grid-building example
// of the reproduction as a named, overridable ExperimentSpec — plus the
// preset-specific presentation (paper-style tables, map reports, shape-check
// text) as ExperimentPrograms. Grid assembly lives exclusively in the specs;
// programs only set up runtime-registered backend keys (the Fig. 4
// methodology's "sram_selected") and render results.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "attacks/diagnostics.hpp"
#include "core/stats.hpp"
#include "exp/al_runner.hpp"
#include "exp/ascii_plot.hpp"
#include "exp/experiment_registry.hpp"
#include "exp/table_printer.hpp"
#include "hw/sram_backend.hpp"
#include "hw/xbar_backend.hpp"
#include "sram/layer_selector.hpp"
#include "sram/noise_hook.hpp"

namespace rhw::exp {

namespace {

bool fast_mode() {
  const char* env = std::getenv("RHW_FAST");
  return env != nullptr && *env != '\0' && *env != '0';
}

// -- Fig. 4 methodology plumbing (shared by fig5 / table1 / table2) -----------

std::string selection_cache_path(const std::string& arch,
                                 const std::string& dataset) {
  return bench_out_dir() + "/selection_" + arch + "_" + dataset + ".txt";
}

// Registers (or replaces) the "sram_selected" backend key: an SramBackend
// carrying an explicit precomputed site selection, so grids re-evaluating a
// methodology result reference it by spec string like any other hardware.
// The only knob is vdd; the selection itself is baked into the factory.
void register_selected_sram_backend(
    const std::vector<sram::SiteChoice>& selected) {
  hw::BackendRegistry::instance().add(
      "sram_selected",
      [selected](const hw::BackendOptions& opts) -> hw::BackendPtr {
        auto reader = core::OptionReader("backend", "sram_selected", opts);
        hw::SramBackendConfig cfg;
        cfg.vdd = reader.number("vdd", 0.68);
        cfg.selection = selected;
        reader.finish();
        return std::make_unique<hw::SramBackend>(std::move(cfg));
      });
}

// The weight-noise ablation as a proper backend: prepare() corrupts the
// weight layers feeding the selected sites, as if the weight memories were
// read through erroneous 6T cells. Registered under "sram_weight_noise" so
// grids reference it by spec string; replicate() returns a fresh copy whose
// (deterministic) prepare reproduces the corruption bit-for-bit.
class WeightNoiseBackend final : public hw::HardwareBackend {
 public:
  explicit WeightNoiseBackend(std::vector<sram::SiteChoice> selected)
      : selected_(std::move(selected)) {}

  std::string name() const override { return "sram_weight_noise"; }

  hw::BackendPtr replicate() const override {
    return std::make_unique<WeightNoiseBackend>(selected_);
  }

 protected:
  void do_prepare(nn::Module& net, const std::vector<models::ActivationSite>&,
                  const data::Dataset*) override {
    // The validation-time stand-in registers this key with an empty
    // selection so `rhw_run --list`/docs_check can resolve the fig5w spec;
    // actually *running* it without the methodology's selection would be a
    // silent no-op arm, so fail loudly instead.
    if (selected_.empty()) {
      throw std::invalid_argument(
          "backend sram_weight_noise: no site selection registered — the "
          "fig5w preset's setup bakes one in; this key is not usable from "
          "other experiments");
    }
    auto layers = nn::collect_weight_layers(net);
    for (size_t k = 0; k < selected_.size() && k < layers.size(); ++k) {
      sram::SramNoiseConfig nc;
      nc.word = selected_[k].word;
      nc.vdd = 0.68;
      sram::corrupt_layer_weights(*layers[k], nc);
    }
  }

 private:
  std::vector<sram::SiteChoice> selected_;
};

void register_weight_noise_backend(
    const std::vector<sram::SiteChoice>& selected) {
  hw::BackendRegistry::instance().add(
      "sram_weight_noise",
      [selected](const hw::BackendOptions& opts) -> hw::BackendPtr {
        core::OptionReader("backend", "sram_weight_noise", opts).finish();
        return std::make_unique<WeightNoiseBackend>(selected);
      });
}

// Runs (or loads from cache) the methodology for one panel.
sram::SelectionResult run_methodology(PanelContext& pc) {
  const std::string cache =
      selection_cache_path(pc.arch.arch, pc.dataset.tag);
  sram::SelectionResult result;
  if (sram::load_selection(cache, &result) &&
      result.per_site_best.size() == pc.model.sites.size()) {
    std::printf("[rhw_run] loaded cached selection from %s\n", cache.c_str());
    return result;
  }
  sram::SelectorConfig cfg;
  cfg.eval_count = eval_count(192);
  // Probe strength where the baseline attack is meaningful: the 100-class
  // models sit much closer to their decision boundaries, so the sweep uses a
  // gentler epsilon there (at 0.1 their baseline adversarial accuracy is
  // already ~0 and no configuration can clear the +5% bar).
  cfg.epsilon = pc.model.num_classes > 50 ? 0.04f : 0.1f;
  result = sram::select_layers(pc.model, pc.data.test, cfg);
  sram::save_selection(cache, result);
  return result;
}

void print_map_report(SweepEngine& engine, const std::string& key,
                      const std::string& model_name) {
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(engine.backend(key));
  if (xb == nullptr) return;
  const auto& report = xb->map_report();
  const auto& spec = xb->config().map.spec;
  std::printf(
      "[rhw_run] mapped %s onto %lldx%lld crossbars (RMIN=%.0f kOhm): %lld "
      "tiles, mean|dW|/max|W| = %.4f\n",
      model_name.c_str(), static_cast<long long>(spec.rows),
      static_cast<long long>(spec.cols), spec.r_min / 1e3,
      static_cast<long long>(report.num_tiles),
      report.mean_rel_weight_error);
}

// -- shared spec fragments ----------------------------------------------------

ExperimentBackend arm(std::string key, std::string hw,
                      std::string defense = "", bool calibrate = false) {
  return {std::move(key), std::move(hw), std::move(defense), calibrate};
}

const char* kTinyTrained = "tiny:classes=10,train=100,test=25,size=16";
const char* kSmallVgg8 = "vgg8:width=0.125,in=16";

// -- fig5 / fig5w -------------------------------------------------------------

ExperimentSpec fig5_spec(bool weights) {
  ExperimentSpec s;
  s.tag = weights ? "fig5w" : "fig5";
  s.title = "Fig. 5: AL vs FGSM epsilon with hybrid-memory bit-error noise";
  s.subtitle =
      weights ? "(ablation: noise injected into weight memories instead of "
                "activation memories)"
              : "AL = clean - adversarial accuracy (%); lower is more robust. "
                "Baseline = software model, BitErrorNoise = selected layers "
                "at Vdd 0.68 V.";
  for (const char* arch : {"vgg19", "resnet18"}) {
    for (const char* dataset : {"synth-c10", "synth-c100"}) {
      s.panels.push_back({arch, dataset});
    }
  }
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(
      arm("noisy", weights ? "sram_weight_noise" : "sram_selected:vdd=0.68"));
  // Attack gradients come from the clean model (noise never in gradients).
  s.modes.push_back({"Baseline", "ideal", "ideal"});
  s.modes.push_back({"BitErrorNoise", "ideal", "noisy"});
  s.attacks.push_back({"fgsm", fgsm_epsilons()});
  return s;
}

class Fig5Program final : public ExperimentProgram {
 public:
  explicit Fig5Program(bool weights)
      : weights_(weights),
        table_({"network", "dataset", "eps", "AL baseline", "AL bit-error",
                "AL reduction", "clean (noisy)", "adv (noisy)"}) {}

  void setup(PanelContext& pc) override {
    const auto selection = run_methodology(pc);
    if (weights_) {
      register_weight_noise_backend(selection.selected);
    } else {
      register_selected_sram_backend(selection.selected);
    }
  }

  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    const auto base_curve = result.curve("Baseline", "fgsm");
    const auto noisy_curve = result.curve("BitErrorNoise", "fgsm");
    std::vector<Series> panel(2);
    panel[0].label = "Baseline";
    panel[1].label = "BitErrorNoise";
    for (size_t i = 0; i < base_curve.points.size(); ++i) {
      const auto& b = base_curve.points[i];
      const auto& n = noisy_curve.points[i];
      table_.add_row({pc.arch.arch, pc.dataset.tag, fmt(b.epsilon, 2),
                      fmt(b.al, 2), fmt(n.al, 2), fmt(b.al - n.al, 2),
                      fmt(n.clean_acc, 2), fmt(n.adv_acc, 2)});
      panel[0].x.push_back(b.epsilon);
      panel[0].y.push_back(b.al);
      panel[1].x.push_back(n.epsilon);
      panel[1].y.push_back(n.al);
    }
    PlotOptions opt;
    opt.title = pc.arch.arch + " / " + pc.dataset.tag + " - FGSM (AL vs eps)";
    opt.y_min = 0;
    opt.y_max = 100;
    std::printf("%s\n", render_ascii_plot(panel, opt).c_str());
  }

  void finish(RunContext&) override {
    table_.print();
    table_.write_csv(bench_out_dir() + (weights_ ? "/fig5_al_curves_weights.csv"
                                                 : "/fig5_al_curves.csv"));
    std::printf(
        "\nPaper shape check: the bit-error column should sit below the "
        "baseline column\n(positive 'AL reduction'), with VGG19 showing lower "
        "overall AL than ResNet18.\n");
  }

 private:
  bool weights_;
  TablePrinter table_;
};

// -- table1 / table2 ----------------------------------------------------------

ExperimentSpec config_table_spec(const std::string& arch,
                                 const std::string& table_name) {
  ExperimentSpec s;
  s.tag = table_name;
  s.title = table_name;
  s.subtitle =
      "Layer-wise activation-memory configurations (8T/6T ratios) chosen by "
      "the Fig. 4 methodology at Vdd = 0.68 V; 'H' = homogeneous (no "
      "bit-error noise injected). CA = clean accuracy of the noise-injected "
      "DNN / deviation from the software baseline.";
  s.panels.push_back({arch, "synth-c10"});
  s.panels.push_back({arch, "synth-c100"});
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("noisy", "sram_selected:vdd=0.68"));
  s.modes.push_back({"Baseline", "ideal", "ideal"});
  s.modes.push_back({"BitErrorNoise", "ideal", "noisy"});
  // Probe epsilons for both dataset difficulties; the report picks the
  // meaningful one per panel (0.04 for 100-class models, 0.1 otherwise).
  // Both panels sweep both probes — two extra cells per panel, negligible
  // next to the methodology run, and it keeps the grid declarative instead
  // of per-panel.
  s.attacks.push_back({"fgsm", {0.1f, 0.04f}});
  return s;
}

class ConfigTableProgram final : public ExperimentProgram {
 public:
  explicit ConfigTableProgram(std::string table_name)
      : table_name_(std::move(table_name)) {}

  void setup(PanelContext& pc) override {
    selection_ = run_methodology(pc);
    register_selected_sram_backend(selection_.selected);

    std::vector<std::string> headers{"dataset"};
    std::vector<std::string> row{pc.dataset.tag};
    for (const auto& site : pc.model.sites) {
      headers.push_back(site.label);
      std::string cell = "H";
      for (const auto& sel : selection_.selected) {
        if (sel.site_label == site.label) cell = sel.word.ratio_label();
      }
      row.push_back(cell);
    }
    headers.push_back("VDD");
    row.push_back("0.68V");
    headers.push_back("CA/Deviation");
    row.push_back(fmt(selection_.final_clean_acc, 2) + " / " +
                  fmt(selection_.baseline_clean_acc -
                          selection_.final_clean_acc,
                      2));
    TablePrinter table(headers);
    table.add_row(row);
    table.print();
    table.write_csv(bench_out_dir() + "/" + table_name_ + "_" +
                    pc.dataset.tag + ".csv");
    std::printf(
        "  baseline: clean %.2f%%  adv(FGSM eps=%.2f) %.2f%%  |  with noise: "
        "adv %.2f%%  (selected %zu sites out of %zu; shortlist %zu)\n\n",
        selection_.baseline_clean_acc,
        pc.model.num_classes > 50 ? 0.04 : 0.1, selection_.baseline_adv_acc,
        selection_.final_adv_acc, selection_.selected.size(),
        pc.model.sites.size(), selection_.shortlisted.size());
  }

  void report(PanelContext& pc) override {
    // Sweep-engine re-check of the selected configuration at the probe
    // epsilon (gentler for 100-class models).
    const SweepResult& result = *pc.result;
    const size_t eps_index = pc.model.num_classes > 50 ? 1 : 0;
    const auto* base = result.find(0, 0, eps_index);
    const auto* noise = result.find(1, 0, eps_index);
    if (base != nullptr && noise != nullptr) {
      std::printf(
          "  [sweep] eval-set re-check (FGSM eps=%.2f): baseline clean "
          "%.2f%% adv %.2f%%  |  noisy clean %.2f%% adv %.2f%%  (AL %.2f -> "
          "%.2f)\n\n",
          static_cast<double>(base->epsilon), base->clean.mean,
          base->adv.mean, noise->clean.mean, noise->adv.mean, base->al.mean,
          noise->al.mean);
    }
    ExperimentProgram::report(pc);
  }

  void finish(RunContext&) override {
    std::printf("%s\n", table_name_ == "table1_vgg19"
                            ? "Paper shape check: noise-injection sites "
                              "should concentrate in the\ninitial layers, "
                              "with a small clean-accuracy deviation (paper: "
                              "2.61% / 2.9%)."
                            : "Paper shape check: as in Table I, early layers "
                              "dominate; ResNet18\ntolerates a somewhat "
                              "larger clean-accuracy deviation (paper: 6.14% "
                              "/ 7.1%).");
  }

 private:
  std::string table_name_;
  sram::SelectionResult selection_;
};

// -- fig6 / fig7 (crossbar robustness figures) --------------------------------

ExperimentSpec xbar_figure_spec(const std::string& arch,
                                const std::string& dataset,
                                const std::string& figure_name) {
  ExperimentSpec s;
  s.tag = figure_name;
  s.title = figure_name + ": crossbar non-ideality robustness, " + arch +
            " on " + dataset;
  s.subtitle =
      "Attack-SW = software baseline attacked white-box; SH = software-"
      "crafted adversaries on the crossbar model; HH = adversaries crafted "
      "through the crossbar model itself. AL = clean - adversarial (%).";
  s.panels.push_back({arch, dataset});
  s.backends.push_back(arm("ideal", "ideal"));
  for (const int64_t size : {16, 32}) {
    const std::string key = "x" + std::to_string(size);
    const std::string label = "Cross" + std::to_string(size);
    s.backends.push_back(arm(key, "xbar:size=" + std::to_string(size)));
    s.modes.push_back({label + "/Attack-SW", "ideal", "ideal"});
    s.modes.push_back({label + "/SH", "ideal", key});
    s.modes.push_back({label + "/HH", key, key});
  }
  s.attacks.push_back({"fgsm", fgsm_epsilons()});
  s.attacks.push_back({"pgd", pgd_epsilons()});
  return s;
}

class XbarFigureProgram final : public ExperimentProgram {
 public:
  explicit XbarFigureProgram(std::string extra_check = "")
      : extra_check_(std::move(extra_check)) {}

  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    TablePrinter table(
        {"crossbar", "attack", "mode", "eps", "clean", "adv", "AL"});
    for (const int64_t size : {16, 32}) {
      const std::string key = "x" + std::to_string(size);
      const std::string label = "Cross" + std::to_string(size);
      print_map_report(*pc.engine, key, pc.model.name);
      for (const std::string spec : {"fgsm", "pgd"}) {
        std::vector<Series> panel;
        for (const char* mode : {"Attack-SW", "SH", "HH"}) {
          const auto curve = result.curve(label + "/" + mode, spec);
          Series series;
          series.label = mode;
          for (const auto& pt : curve.points) {
            table.add_row({label, attacks::attack_display_name(spec), mode,
                           fmt(pt.epsilon, 3), fmt(pt.clean_acc, 2),
                           fmt(pt.adv_acc, 2), fmt(pt.al, 2)});
            series.x.push_back(pt.epsilon);
            series.y.push_back(pt.al);
          }
          panel.push_back(std::move(series));
        }
        PlotOptions opt;
        opt.title = label + " - " + attacks::attack_display_name(spec) +
                    " attack (AL vs eps)";
        opt.y_min = 0;
        opt.y_max = 100;
        std::printf("%s\n", render_ascii_plot(panel, opt).c_str());
      }
      std::printf("[rhw_run] %s\n",
                  pc.engine->backend(key)->energy_report().summary().c_str());
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    std::printf(
        "\nPaper shape check: SH and HH ALs sit well below Attack-SW at the "
        "same eps\n(paper: ~10-20%% lower), for both FGSM and PGD.\n");
    if (!extra_check_.empty()) std::printf("%s\n", extra_check_.c_str());
  }

 private:
  std::string extra_check_;
};

// -- fig8a --------------------------------------------------------------------

ExperimentSpec fig8a_spec() {
  ExperimentSpec s;
  s.tag = "fig8a_rmin";
  s.title = "Fig. 8(a): effect of RMIN on crossbar robustness";
  s.subtitle =
      "Smaller RMIN -> lower effective resistance -> parasitics dominate "
      "more -> more intrinsic noise -> lower AL.";
  s.panels.push_back({"vgg8", "synth-c10"});
  s.backends.push_back(arm("ideal", "ideal"));
  for (const int rk : {10, 20}) {
    const std::string key = "r" + std::to_string(rk);
    s.backends.push_back(
        arm(key, "xbar:size=32,rmin=" + std::to_string(rk * 1000)));
    s.modes.push_back({key + "/SH", "ideal", key});
    s.modes.push_back({key + "/HH", key, key});
  }
  s.attacks.push_back({"pgd", {2.f / 255.f, 8.f / 255.f, 32.f / 255.f}});
  return s;
}

class Fig8aProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    // The pivot table needs the preset's three-point PGD axis on every
    // RMIN mode; if overrides reshaped the grid, fall back to the generic
    // report instead of indexing past the curve.
    for (const char* label : {"r10/SH", "r10/HH", "r20/SH", "r20/HH"}) {
      try {
        if (result.curve(label, "pgd").points.size() < 3) {
          ExperimentProgram::report(pc);
          return;
        }
      } catch (const std::invalid_argument&) {
        ExperimentProgram::report(pc);
        return;
      }
    }
    TablePrinter table(
        {"RMIN", "mode", "eps=2/255", "eps=8/255", "eps=32/255"});
    for (const int rk : {10, 20}) {
      const std::string key = "r" + std::to_string(rk);
      print_map_report(*pc.engine, key, pc.model.name);
      for (const char* mode : {"SH", "HH"}) {
        const auto curve = result.curve(key + "/" + mode, "pgd");
        table.add_row({std::to_string(rk) + " kOhm", mode,
                       fmt(curve.points[0].al, 2), fmt(curve.points[1].al, 2),
                       fmt(curve.points[2].al, 2)});
      }
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    std::printf(
        "\nPaper shape check: ALs for RMIN = 10 kOhm rows should be lower "
        "than the\ncorresponding RMIN = 20 kOhm rows.\n");
  }
};

// -- fig8bc -------------------------------------------------------------------

ExperimentSpec fig8bc_spec() {
  const bool fast = fast_mode();
  ExperimentSpec s;
  s.tag = "fig8bc_defense_comparison";
  s.title = std::string("Fig. 8(b)-(c): crossbar defense vs 4-bit "
                        "discretization vs QUANOS vs randomized smoothing") +
            (fast ? " [RHW_FAST]" : "");
  s.subtitle =
      "All defenses evaluated white-box on themselves except SH, whose "
      "adversaries come from the undefended software baseline (the paper's "
      "SH-on-Cross32 configuration). Every arm is a (backend spec, defense "
      "spec) pair.";
  s.panels.push_back(
      {fast ? "vgg8" : "vgg16", fast ? "synth-c10" : "synth-c100"});
  s.backends.push_back(arm("ideal", "ideal"));
  // Defense 1: crossbar mapping (SH mode, 32x32), via the backend registry.
  s.backends.push_back(arm("x32", "xbar:size=32"));
  // Defense 2: 4-bit pixel discretization [6] over the ideal substrate.
  s.backends.push_back(arm("disc4b", "ideal", "jpeg_quant:bits=4"));
  // Defense 3: QUANOS [8], requantizing from the calibration set.
  s.backends.push_back(arm("quanos", "ideal", "quanos:samples=128", true));
  // Defense 4 (beyond the paper): randomized smoothing; 16 votes is the
  // certification floor at alpha=0.001.
  s.backends.push_back(arm("smoothed", "ideal", "smooth:sigma=0.1,samples=16"));
  s.modes.push_back({"Attack-SW", "ideal", "ideal"});
  s.modes.push_back({"SH-Cross32", "ideal", "x32"});
  s.modes.push_back({"4b-discretization", "disc4b", "disc4b"});
  s.modes.push_back({"QUANOS", "quanos", "quanos"});
  s.modes.push_back({"Smooth", "smoothed", "smoothed"});
  s.attacks.push_back({"fgsm", fgsm_epsilons()});
  s.attacks.push_back({"pgd", pgd_epsilons()});
  return s;
}

class Fig8bcProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    print_map_report(*pc.engine, "x32", pc.model.name);
    TablePrinter table({"attack", "defense", "eps", "clean", "adv", "AL"});
    for (const std::string spec : {"fgsm", "pgd"}) {
      const std::string attack = attacks::attack_display_name(spec);
      for (const auto& mode : result.mode_labels) {
        const auto curve = result.curve(mode, spec);
        for (const auto& pt : curve.points) {
          table.add_row({attack, mode, fmt(pt.epsilon, 3),
                         fmt(pt.clean_acc, 2), fmt(pt.adv_acc, 2),
                         fmt(pt.al, 2)});
        }
      }
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      if (result.mode_labels[m] != "Smooth") continue;
      const auto* smooth_agg = result.find(m, 0, 0);
      std::printf(
          "\n[cert] Smooth: mean certified L2 radius %.4f (sigma=0.1, 16 "
          "votes, Clopper-Pearson @ 99.9%%)\n",
          smooth_agg != nullptr ? smooth_agg->cert.mean : 0.0);
    }
    std::printf(
        "\nPaper shape check: FGSM -> SH-Cross32 should have the lowest AL "
        "of all\npaper defenses (paper: ~15%% better than 4b, ~4%% better "
        "than QUANOS); PGD ->\nQUANOS should win with SH second.\n");
  }
};

// -- fig_cert -----------------------------------------------------------------

ExperimentSpec fig_cert_spec() {
  const bool fast = fast_mode();
  ExperimentSpec s;
  s.tag = "fig_cert";
  s.title =
      std::string(
          "Certified accuracy vs L2 radius (smooth:sigma over substrates)") +
      (fast ? " [RHW_FAST]" : "");
  s.subtitle =
      "Each arm wraps a substrate in randomized smoothing at one sigma; its "
      "aggregate row is one (mean certified L2 radius, smoothed clean "
      "accuracy) point of the Cohen staircase, from the existing "
      "Clopper-Pearson cert_radius column. Larger sigma certifies a larger "
      "ball at a lower ceiling. dataset= swaps the panel onto any registered "
      "dataset, including +corrupt:... variants (docs/DATASETS.md).";
  if (fast) {
    s.panels.push_back({kSmallVgg8, kTinyTrained});
    s.train = "quick:epochs=4,batch=50";
  } else {
    s.panels.push_back({"vgg8", "synth-c10"});
    s.train = "zoo";
  }
  s.trials = fast ? 1 : 3;
  // alpha=0.05 everywhere: at CI-sized vote counts the default 0.001
  // makes the Clopper-Pearson lower bound top out below 1/2 (0.001^(1/8)
  // ~= 0.42), which certifies radius 0 for every arm.
  const std::string votes =
      (fast ? "8" : "16") + std::string(",alpha=0.05");
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(
      arm("s010", "ideal", "smooth:sigma=0.1,samples=" + votes));
  s.backends.push_back(
      arm("s025", "ideal", "smooth:sigma=0.25,samples=" + votes));
  s.backends.push_back(
      arm("s050", "ideal", "smooth:sigma=0.5,samples=" + votes));
  // The compositional point: certification on top of the noisy substrate.
  s.backends.push_back(arm("sram_s025", "sram:vdd=0.68,eval_count=150",
                           "smooth:sigma=0.25,samples=" + votes, true));
  // Mode labels avoid '=': it separates label from pairing in the modes+=
  // list grammar, and fig_cert must survive the to_args() round trip.
  s.modes.push_back({"baseline", "ideal", "ideal"});
  s.modes.push_back({"sigma-0.10", "s010", "s010"});
  s.modes.push_back({"sigma-0.25", "s025", "s025"});
  s.modes.push_back({"sigma-0.50", "s050", "s050"});
  s.modes.push_back({"sigma-0.25+sram", "ideal", "sram_s025"});
  s.attacks.push_back({"fgsm", {0.1f}});
  return s;
}

class FigCertProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    TablePrinter table(
        {"arm", "substrate", "defense", "clean", "adv", "cert L2"});
    std::vector<std::pair<double, double>> staircase;  // (radius, clean acc)
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      const auto* agg = result.find(m, 0, 0);
      if (agg == nullptr) continue;
      const SweepBackendInfo* info = nullptr;
      for (const auto& b : result.backends) {
        if (b.key == result.mode_defs[m].eval) info = &b;
      }
      table.add_row(
          {result.mode_labels[m], info != nullptr ? info->spec : "-",
           info != nullptr && info->defense != "none" ? info->defense : "-",
           agg->clean.format(), agg->adv.format(),
           agg->cert.mean > 0.0 ? agg->cert.format(3) : "-"});
      if (agg->cert.mean > 0.0) {
        staircase.emplace_back(agg->cert.mean, agg->clean.mean);
      }
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");

    std::sort(staircase.begin(), staircase.end());
    if (staircase.size() >= 2) {
      Series series;
      series.label = "certified acc";
      for (const auto& [radius, acc] : staircase) {
        series.x.push_back(static_cast<float>(radius));
        series.y.push_back(static_cast<float>(acc));
      }
      PlotOptions opt;
      opt.title = "certified accuracy vs mean certified L2 radius";
      opt.y_min = 0;
      opt.y_max = 100;
      std::printf("%s\n", render_ascii_plot({series}, opt).c_str());
    }
    std::printf(
        "\nReading guide: each smoothed arm contributes one staircase point "
        "—\nmean certified L2 radius (x) against smoothed clean accuracy "
        "(y).\nLarger sigma moves right (bigger certified ball) and down "
        "(noisier\nvotes); the sram arm shows how much certified radius the "
        "noisy\nsubstrate costs at fixed sigma. The baseline row certifies "
        "nothing.\n");
  }
};

// -- table3 -------------------------------------------------------------------

ExperimentSpec table3_spec() {
  ExperimentSpec s;
  s.tag = "table3_xbar_sizes";
  s.title = "Table III: HH-PGD AL vs crossbar size (VGG8, synth-c10)";
  s.subtitle =
      "Larger crossbars carry more parasitics, hence more intrinsic noise "
      "and lower AL.";
  s.panels.push_back({"vgg8", "synth-c10"});
  for (const int64_t size : {16, 32, 64}) {
    const std::string key = "x" + std::to_string(size);
    s.backends.push_back(arm(key, "xbar:size=" + std::to_string(size)));
    s.modes.push_back({"HH/" + key, key, key});
  }
  s.attacks.push_back({"pgd",
                       {2.f / 255.f, 4.f / 255.f, 8.f / 255.f, 16.f / 255.f,
                        32.f / 255.f}});
  return s;
}

class Table3Program final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    TablePrinter table({"eps", "Cross16", "Cross32", "Cross64"});
    std::vector<std::vector<double>> al;
    for (const int64_t size : {16, 32, 64}) {
      const std::string key = "x" + std::to_string(size);
      print_map_report(*pc.engine, key, pc.model.name);
      const auto curve = result.curve("HH/" + key, "pgd");
      al.resize(curve.points.size());
      for (size_t i = 0; i < curve.points.size(); ++i) {
        al[i].push_back(curve.points[i].al);
      }
    }
    for (size_t i = 0; i < al.size(); ++i) {
      const float eps = result.aggregates.empty()
                            ? 0.f
                            : pc.grid.attacks[0].epsilons[i];
      table.add_row({std::to_string(static_cast<int>(eps * 255 + 0.5f)) +
                         "/255",
                     fmt(al[i][0], 2), fmt(al[i][1], 2), fmt(al[i][2], 2)});
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    std::printf(
        "\nPaper shape check: for each eps, AL should decrease with crossbar "
        "size\n(Cross64 most robust; paper rows: ~72 / ~71 / ~68).\n");
  }
};

// -- defense shootout ---------------------------------------------------------

ExperimentSpec shootout_spec() {
  ExperimentSpec s;
  s.tag = "defense_shootout";
  s.title = "Defense shoot-out";
  s.subtitle =
      "Hardware-noise defenses vs software defenses on one model, one table "
      "— every arm declared purely by spec strings; noisy rows are mean ± "
      "95% CI over 3 noise-stream trials. The energy column prices each "
      "serving arm including its defense overhead (N x forwards for smooth, "
      "requantized words for QUANOS), so rows rank at iso-energy.";
  s.panels.push_back({kSmallVgg8, kTinyTrained});
  s.train = "quick:epochs=4,batch=50";
  s.eval_count = 0;  // whole (tiny) test set
  s.trials = 3;
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("sram", "sram:vdd=0.68,eval_count=150", "", true));
  s.backends.push_back(arm("xbar", "xbar:size=32"));
  s.backends.push_back(
      arm("advtrain", "ideal", "adv_train:attack=fgsm,eps=0.1,ratio=0.5,epochs=2"));
  s.backends.push_back(arm("disc4b", "ideal", "jpeg_quant:bits=4"));
  s.backends.push_back(arm("quanos", "ideal", "quanos:samples=100", true));
  // The compositional arm: smoothing over the noisy SRAM substrate.
  s.backends.push_back(arm("smoothsram", "sram:vdd=0.68,eval_count=150",
                           "smooth:sigma=0.12,samples=8,alpha=0.05", true));
  s.modes.push_back({"undefended", "ideal", "ideal"});
  s.modes.push_back({"SRAM-noise", "ideal", "sram"});
  s.modes.push_back({"crossbar-SH", "ideal", "xbar"});
  s.modes.push_back({"adv-train", "advtrain", "advtrain"});
  s.modes.push_back({"4b-discretize", "disc4b", "disc4b"});
  s.modes.push_back({"QUANOS", "quanos", "quanos"});
  s.modes.push_back({"smooth+SRAM", "ideal", "smoothsram"});
  s.attacks.push_back({"fgsm", {0.1f}});
  s.attacks.push_back({"pgd", {8.f / 255.f}});
  return s;
}

class ShootoutProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    // The paper-style table needs the preset's (FGSM, PGD) attack pair; if
    // overrides reshaped the attack axis, fall back to the generic report
    // instead of dereferencing missing aggregates.
    if (result.attack_specs.size() < 2 ||
        result.find(0, 0, 0) == nullptr || result.find(0, 1, 0) == nullptr) {
      ExperimentProgram::report(pc);
      return;
    }
    for (const char* key : {"ideal", "sram", "xbar", "quanos", "smoothsram"}) {
      const auto* backend = pc.engine->backend(key);
      if (backend != nullptr) {
        std::printf("prepared '%s'  ->  %s\n", key,
                    backend->energy_report().summary().c_str());
      }
    }
    std::printf("\n");
    TablePrinter table({"defense", "clean", "FGSM adv", "FGSM AL", "PGD adv",
                        "PGD AL", "cert L2", "energy (nJ)"});
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      const auto* fgsm = result.find(m, 0, 0);
      const auto* pgd = result.find(m, 1, 0);
      const auto* eval_backend =
          pc.engine->backend(result.mode_defs[m].eval);
      table.add_row(
          {result.mode_labels[m], fgsm->clean.format(), fgsm->adv.format(),
           fgsm->al.format(), pgd->adv.format(), pgd->al.format(),
           fgsm->cert.mean > 0.0 ? fgsm->cert.format(3) : "-",
           eval_backend != nullptr
               ? fmt(eval_backend->energy_report().energy_nj, 4)
               : "-"});
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    std::printf(
        "\nReading guide: every defense trades a little clean accuracy for "
        "a\nlower AL; the hardware rows do it without touching the training "
        "pipeline,\nand the smooth+SRAM row composes both worlds (its cert "
        "column is the mean\ncertified L2 radius — no other arm certifies "
        "anything). The energy column\nincludes defense overhead line items, "
        "so rows compare at iso-energy.\nNoisy rows are mean±95%%CI over %d "
        "noise-stream trials.\n",
        result.trials);
  }
};

// -- gradient-obfuscation audit -----------------------------------------------

ExperimentSpec audit_spec() {
  ExperimentSpec s;
  s.tag = "gradient_obfuscation_audit";
  s.title = "Gradient-obfuscation audit";
  s.subtitle =
      "PGD (the paper's number) vs EOT-PGD (adaptive) vs Square (gradient-"
      "free) per hardware substrate, plus transfer and gradient-agreement "
      "checks — the Athalye et al. obfuscated-gradients audit as one "
      "declarative grid.";
  s.panels.push_back({kSmallVgg8, kTinyTrained});
  s.train = "quick:epochs=4,batch=50";
  s.eval_count = 200;
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("xbar", "xbar:size=32"));
  s.backends.push_back(arm("sram", "sram:sites=2,num_8t=2,vdd=0.64"));
  s.modes.push_back({"control", "ideal", "ideal"});
  for (const char* key : {"xbar", "sram"}) {
    s.modes.push_back({std::string("white-box/") + key, key, key});
    s.modes.push_back({std::string("transfer/") + key, "ideal", key});
  }
  s.attacks.push_back({"pgd:steps=7", {0.1f}});
  s.attacks.push_back({"eot_pgd:steps=7,samples=8", {0.1f}});
  s.attacks.push_back({"square:queries=150", {0.1f}});
  return s;
}

class AuditProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    attacks::ObfuscationConfig ocfg;
    ocfg.epsilon = 0.1f;
    ocfg.sample_count = pc.eval_set.size();

    auto mode_index = [&](const std::string& label) {
      for (size_t m = 0; m < result.mode_labels.size(); ++m) {
        if (result.mode_labels[m] == label) return m;
      }
      return result.mode_labels.size();
    };
    // The audit narrative needs the preset's mode/attack structure (control
    // + white-box/transfer per substrate, PGD/EOT-PGD/Square); if overrides
    // reshaped it, fall back to the generic report instead of dereferencing
    // missing rows.
    bool shape_intact = result.attack_specs.size() >= 3;
    for (const char* key : {"ideal", "xbar", "sram"}) {
      shape_intact = shape_intact && pc.engine->backend(key) != nullptr;
    }
    for (const char* label :
         {"control", "white-box/xbar", "transfer/xbar", "white-box/sram",
          "transfer/sram"}) {
      shape_intact = shape_intact &&
                     result.find(mode_index(label), 0, 0) != nullptr &&
                     result.find(mode_index(label), 2, 0) != nullptr;
    }
    if (!shape_intact) {
      ExperimentProgram::report(pc);
      return;
    }
    // Attack arms by grid order: 0 = PGD, 1 = EOT-PGD, 2 = Square.
    auto adv = [&](const std::string& mode, size_t attack) {
      return result.find(mode_index(mode), attack, 0)->adv.mean;
    };

    nn::Module& reference = pc.engine->backend("ideal")->module();
    const auto* control = result.find(mode_index("control"), 0, 0);
    std::printf("software baseline (control):\n");
    std::printf("  clean accuracy                     : %.2f%%\n",
                control->clean.mean);
    std::printf("  white-box PGD adv accuracy         : %.2f%%\n",
                control->adv.mean);
    std::printf("  EOT-PGD adv accuracy               : %.2f%%\n",
                adv("control", 1));
    std::printf("  Square (black-box) adv accuracy    : %.2f%%\n\n",
                adv("control", 2));

    const struct {
      const char* title;
      const char* key;
    } substrates[] = {
        {"crossbar-mapped model (32x32)", "xbar"},
        {"hybrid-SRAM noisy model (2/6 @ 0.64 V)", "sram"},
    };
    TablePrinter table({"substrate", "clean", "PGD", "EOT-PGD", "Square",
                        "transfer-PGD", "verdict"});
    for (const auto& sub : substrates) {
      const std::string white = std::string("white-box/") + sub.key;
      const std::string transfer = std::string("transfer/") + sub.key;
      nn::Module& hardware = pc.engine->backend(sub.key)->module();
      const double clean = result.find(mode_index(white), 0, 0)->clean.mean;
      const double pgd_acc = adv(white, 0);
      const double eot_acc = adv(white, 1);
      const double square_acc = adv(white, 2);
      const double transfer_acc = adv(transfer, 0);
      const double cos =
          attacks::gradient_agreement(reference, hardware, pc.eval_set, ocfg);
      const double random_floor =
          attacks::random_perturbation_accuracy(hardware, pc.eval_set, ocfg);

      // The accuracies are single noisy draws on a small set, so require the
      // gap to clear a 5-example margin before raising the flag.
      const double margin =
          100.0 * 5.0 / static_cast<double>(pc.eval_set.size());
      const bool eot_breaks = eot_acc < pgd_acc - margin;
      const bool square_breaks = square_acc < pgd_acc - margin;
      const bool transfer_breaks = transfer_acc < pgd_acc - margin;
      const bool suspected = eot_breaks || square_breaks || transfer_breaks;
      std::string verdict = suspected ? "OBFUSCATION:" : "no sign";
      if (eot_breaks) verdict += " eot";
      if (square_breaks) verdict += " square";
      if (transfer_breaks) verdict += " transfer";
      table.add_row({sub.key, fmt(clean, 2), fmt(pgd_acc, 2),
                     fmt(eot_acc, 2), fmt(square_acc, 2),
                     fmt(transfer_acc, 2), verdict});

      std::printf("%s:\n", sub.title);
      std::printf("  gradient cosine vs software model : %.4f\n", cos);
      std::printf("  clean accuracy                     : %.2f%%\n", clean);
      std::printf("  white-box PGD adv accuracy         : %.2f%%\n", pgd_acc);
      std::printf("  EOT-PGD (adaptive) adv accuracy    : %.2f%%%s\n",
                  eot_acc, eot_breaks ? "   <- beats PGD" : "");
      std::printf("  Square (black-box) adv accuracy    : %.2f%%%s\n",
                  square_acc, square_breaks ? "   <- beats PGD" : "");
      std::printf("  transferred PGD adv accuracy       : %.2f%%%s\n",
                  transfer_acc, transfer_breaks ? "   <- beats PGD" : "");
      std::printf("  random-perturbation floor          : %.2f%%\n",
                  random_floor);
      std::printf("  obfuscation suspected              : %s\n\n",
                  suspected ? "YES" : "no");
    }
    table.print();
    std::printf(
        "\nInterpretation: gradient cosine < 1 means the hardware gradients "
        "diverge from\nthe software model's. Robustness that survives "
        "EOT-PGD and Square is real margin;\nrobustness that only holds "
        "against plain PGD is gradient obfuscation — the\nhonest caveat the "
        "paper's Fig. 1 story needs.\n");
  }
};

// -- sweep smoke --------------------------------------------------------------

ExperimentSpec sweep_smoke_spec() {
  ExperimentSpec s;
  s.tag = "sweep_smoke";
  s.title = "Sweep-engine smoke";
  s.subtitle =
      "Tiny grid, parallel vs serial parity + speedup. Accuracy numbers are "
      "meaningless (untrained model); determinism and scheduling are what is "
      "under test.";
  s.panels.push_back({kSmallVgg8, "tiny:classes=10,train=4,test=8,size=16"});
  s.train = "none";
  s.eval_count = 64;
  s.batch = 32;
  s.trials = 2;
  s.verify = true;  // the CI guard for the engine's determinism contract
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("sram", "sram:sites=2,num_8t=4,vdd=0.64"));
  s.backends.push_back(arm("xbar", "xbar:size=16"));
  s.modes.push_back({"Attack-SW", "ideal", "ideal"});
  s.modes.push_back({"SH-sram", "ideal", "sram"});
  s.modes.push_back({"SH-xbar", "ideal", "xbar"});
  s.modes.push_back({"HH-xbar", "xbar", "xbar"});
  s.attacks.push_back({"fgsm", {0.f, 0.1f, 0.2f}});
  s.attacks.push_back({"pgd", {8.f / 255.f}});
  // Stochastic-aware arms, tiny budgets: attacks which reseed (EOT-PGD) or
  // query (Square) the eval net while crafting must still sweep
  // bit-identically at any lane count.
  s.attacks.push_back({"eot_pgd:steps=2,samples=2", {8.f / 255.f}});
  s.attacks.push_back({"square:queries=12", {0.1f}});
  s.attacks.push_back({"mifgsm:steps=2", {0.1f}});
  return s;
}

// -- serving ------------------------------------------------------------------

ExperimentSpec serve_smoke_spec() {
  ExperimentSpec s;
  s.tag = "serve_smoke";
  s.title = "Serving smoke";
  s.subtitle =
      "Tiny three-arm micro-batching serve run (fused ideal, defense-wrapped, "
      "stochastic SRAM): deterministic Poisson load, rhw-serve-v1 artifact, "
      "and digest parity across load points. Accuracy is meaningless "
      "(untrained model); batching, latency accounting and request-level "
      "determinism are what is under test.";
  s.serve = true;
  s.panels.push_back({kSmallVgg8, "tiny:classes=10,train=4,test=8,size=16"});
  s.train = "none";
  s.eval_count = 64;  // head() clamps to the tiny test set
  s.qps = {400.f, 1600.f};
  s.requests = 96;
  s.batch_max = 8;
  s.linger_us = 1000;
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("disc4b", "ideal", "jpeg_quant:bits=4"));
  s.backends.push_back(arm("sram", "sram:sites=2,num_8t=4,vdd=0.64"));
  return s;
}

ExperimentSpec serve_curve_spec() {
  const bool fast = fast_mode();
  ExperimentSpec s;
  s.tag = "serve";  // -> BENCH_serve.json
  s.title = "Serving latency vs offered load";
  s.subtitle =
      "Open-loop Poisson load swept across offered QPS per (backend, "
      "defense) arm: p50/p95/p99 latency and achieved throughput per point. "
      "Past the saturation knee the open-loop queue grows without bound, so "
      "achieved QPS plateaus while tail latency explodes — the knee the "
      "compute-engine knob (engine=) and batching knobs visibly move.";
  s.serve = true;
  s.panels.push_back({kSmallVgg8, kTinyTrained});
  s.train = fast ? "none" : "quick:epochs=2,batch=50";
  s.eval_count = 64;
  s.qps = {100.f, 200.f, 400.f, 800.f, 1600.f, 3200.f};
  s.requests = fast ? 64 : 192;
  s.batch_max = 16;
  s.linger_us = 2000;
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("xbar", "xbar:size=16"));
  s.backends.push_back(arm("disc4b", "ideal", "jpeg_quant:bits=4"));
  s.backends.push_back(arm("sram", "sram:sites=2,num_8t=4,vdd=0.64"));
  return s;
}

// -- ablations ----------------------------------------------------------------

ExperimentSpec ablation_adaptive_spec() {
  ExperimentSpec s;
  s.tag = "ablation_adaptive";
  s.title = "Ablation: adaptive (EOT) attack on the crossbar defense";
  s.subtitle =
      "HH-PGD with gradient averaging over k noise draws per step. k=1 is "
      "the paper's HH; larger k models an attacker who knows the hardware is "
      "stochastic. Attack-SW is the software reference.";
  s.panels.push_back({"vgg8", "synth-c10"});
  s.backends.push_back(arm("ideal", "ideal"));
  s.backends.push_back(arm("x32", "xbar:size=32"));
  s.modes.push_back({"Attack-SW", "ideal", "ideal"});
  s.modes.push_back({"HH-Cross32", "x32", "x32"});
  const std::vector<float> eps{8.f / 255.f, 16.f / 255.f, 32.f / 255.f};
  s.attacks.push_back({"pgd", eps});
  s.attacks.push_back({"eot_pgd:samples=4", eps});
  s.attacks.push_back({"eot_pgd:samples=16", eps});
  return s;
}

class AblationAdaptiveProgram final : public ExperimentProgram {
 public:
  void finish(RunContext&) override {
    std::printf(
        "\nReading guide: AL grows with k (the adaptive attacker recovers "
        "part of the\ngradient signal), but the deterministic weight "
        "distortion keeps a residual\nrobustness floor below the software "
        "baseline's AL.\n");
  }
};

ExperimentSpec ablation_chip_spec() {
  ExperimentSpec s;
  s.tag = "ablation_chip_variation";
  s.title = "Ablation: chip-to-chip variation";
  s.subtitle =
      "Same network, same crossbar spec, N variation seeds (= N fabricated "
      "chips): each chip is a fresh sample of the sigma/mu = 10% conductance "
      "distribution.";
  s.panels.push_back({"vgg8", "synth-c10"});
  s.backends.push_back(arm("ideal", "ideal"));
  for (int chip = 0; chip < 5; ++chip) {
    const std::string key = "chip" + std::to_string(chip);
    s.backends.push_back(
        arm(key, "xbar:size=32,seed=" +
                     std::to_string(0xC41B + static_cast<uint64_t>(chip) *
                                                 7919)));
    s.modes.push_back({key, "ideal", key});
  }
  s.modes.push_back({"software", "ideal", "ideal"});
  s.attacks.push_back({"fgsm", {0.1f}});
  return s;
}

class AblationChipProgram final : public ExperimentProgram {
 public:
  void report(PanelContext& pc) override {
    const SweepResult& result = *pc.result;
    TablePrinter table({"chip", "clean %", "SH adv %", "SH AL"});
    RunningStats clean_stats, al_stats;
    const SweepAggregate* software = nullptr;
    for (size_t m = 0; m < result.mode_labels.size(); ++m) {
      const auto* agg = result.find(m, 0, 0);
      table.add_row({result.mode_labels[m], fmt(agg->clean.mean, 2),
                     fmt(agg->adv.mean, 2), fmt(agg->al.mean, 2)});
      if (result.mode_labels[m] == "software") {
        software = agg;
      } else {
        clean_stats.push(agg->clean.mean);
        al_stats.push(agg->al.mean);
      }
    }
    table.print();
    table.write_csv(bench_out_dir() + "/" + pc.tag + ".csv");
    std::printf(
        "\nacross %lld chips @ FGSM eps=0.10: clean %.2f +- %.2f %%, AL "
        "%.2f +- %.2f %% (software AL %.2f)\nPaper shape check: every chip's "
        "AL should sit below the software AL — the\ndefense is a property of "
        "the technology, not of one lucky die.\n",
        static_cast<long long>(clean_stats.count), clean_stats.mean,
        clean_stats.stddev(), al_stats.mean, al_stats.stddev(),
        software != nullptr ? software->al.mean : 0.0);
  }
};

}  // namespace

void register_builtin_experiments(ExperimentRegistry& registry) {
  // Validation-time stand-ins for the methodology-registered keys: fig5 and
  // the config tables reference "sram_selected" / "sram_weight_noise" before
  // their setup() bakes in a real selection, and `rhw_run --list` must be
  // able to validate those specs without running the methodology. The
  // programs re-register the keys with the computed selection per panel.
  register_selected_sram_backend({});
  register_weight_noise_backend({});

  registry.add(
      "fig5", [] { return fig5_spec(false); },
      [] { return std::make_unique<Fig5Program>(false); });
  registry.add(
      "fig5w", [] { return fig5_spec(true); },
      [] { return std::make_unique<Fig5Program>(true); });
  registry.add(
      "fig6", [] { return xbar_figure_spec("vgg8", "synth-c10",
                                           "fig6_vgg8_c10"); },
      [] { return std::make_unique<XbarFigureProgram>(); });
  registry.add(
      "fig7",
      [] { return xbar_figure_spec("vgg16", "synth-c100", "fig7_vgg16_c100"); },
      [] {
        return std::make_unique<XbarFigureProgram>(
            "Additional paper shape check (complex dataset): under PGD, HH "
            "should show\nlower AL than SH (gradient obfuscation through the "
            "hardware forward path).");
      });
  registry.add(
      "fig8a", fig8a_spec, [] { return std::make_unique<Fig8aProgram>(); });
  registry.add(
      "fig8bc", fig8bc_spec,
      [] { return std::make_unique<Fig8bcProgram>(); });
  registry.add(
      "fig_cert", fig_cert_spec,
      [] { return std::make_unique<FigCertProgram>(); });
  registry.add(
      "table1", [] { return config_table_spec("vgg19", "table1_vgg19"); },
      [] { return std::make_unique<ConfigTableProgram>("table1_vgg19"); });
  registry.add(
      "table2",
      [] { return config_table_spec("resnet18", "table2_resnet18"); },
      [] { return std::make_unique<ConfigTableProgram>("table2_resnet18"); });
  registry.add(
      "table3", table3_spec, [] { return std::make_unique<Table3Program>(); });
  registry.add(
      "shootout", shootout_spec,
      [] { return std::make_unique<ShootoutProgram>(); });
  registry.add(
      "obfuscation_audit", audit_spec,
      [] { return std::make_unique<AuditProgram>(); });
  registry.add("sweep_smoke", sweep_smoke_spec);
  registry.add("serve_smoke", serve_smoke_spec);
  registry.add("serve_curve", serve_curve_spec);
  registry.add(
      "ablation_adaptive", ablation_adaptive_spec,
      [] { return std::make_unique<AblationAdaptiveProgram>(); });
  registry.add(
      "ablation_chip_variation", ablation_chip_spec,
      [] { return std::make_unique<AblationChipProgram>(); });
}

}  // namespace rhw::exp
