#include "exp/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "exp/artifact.hpp"
#include "exp/sweep_stats.hpp"

namespace rhw::exp {

namespace {

constexpr const char* kJournalSchema = "rhw-journal-v1";

std::string double_token(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::vector<JournalEntry> load_journal(const std::string& path,
                                       const std::string& header) {
  std::ifstream is(path);
  std::vector<JournalEntry> entries;
  if (!is) return entries;
  std::string line;
  bool saw_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonValue doc;
    try {
      doc = parse_json(line);
      if (!saw_header) {
        const std::string schema = doc.at("schema").string_value();
        if (schema != kJournalSchema) {
          throw std::runtime_error("journal " + path + ": unsupported schema '" +
                                   schema + "' (expected " + kJournalSchema +
                                   ")");
        }
        const std::string found = doc.at("header").string_value();
        if (found != header) {
          throw std::runtime_error(
              "journal " + path + ": header mismatch — journal belongs to '" +
              found + "', this run is '" + header +
              "' (same spec, shard and panel required to resume)");
        }
        saw_header = true;
        continue;
      }
      JournalEntry e;
      const std::string type = doc.at("type").string_value();
      if (type == "clean") {
        e.clean = true;
        e.pool = doc.at("pool").string_value();
        e.trial = static_cast<int>(doc.at("trial").number_i64());
        e.clean_acc = doc.at("clean").number();
        e.cert = doc.at("cert").number();
      } else if (type == "cell") {
        e.index = static_cast<size_t>(doc.at("index").number_u64());
        e.adv = doc.at("adv").number();
      } else {
        break;  // unknown entry type: treat like a torn tail, stop replaying
      }
      entries.push_back(e);
    } catch (const std::runtime_error&) {
      // Header problems are fatal; a malformed entry line is the torn tail
      // of a crashed append — stop and let the work re-run.
      if (!saw_header) throw;
      break;
    }
  }
  return entries;
}

SweepJournal::SweepJournal(const std::string& path, const std::string& header,
                           bool append) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  os_.open(path, append ? std::ios::app : std::ios::trunc);
  if (!os_) {
    throw std::runtime_error("journal: cannot open " + path + " for writing");
  }
  if (!append) {
    os_ << "{\"schema\":\"" << kJournalSchema << "\",\"header\":\""
        << json_escape(header) << "\"}\n";
    os_.flush();
  }
}

void SweepJournal::record(const JournalEntry& entry) {
  std::ostringstream line;
  if (entry.clean) {
    line << "{\"type\":\"clean\",\"pool\":\"" << json_escape(entry.pool)
         << "\",\"trial\":" << entry.trial
         << ",\"clean\":" << double_token(entry.clean_acc)
         << ",\"cert\":" << double_token(entry.cert) << "}";
  } else {
    line << "{\"type\":\"cell\",\"index\":" << entry.index
         << ",\"adv\":" << double_token(entry.adv) << "}";
  }
  const std::lock_guard lock(mu_);
  os_ << line.str() << '\n';
  os_.flush();
}

}  // namespace rhw::exp
