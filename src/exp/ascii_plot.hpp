// Terminal plotting for the figure benches: renders AL(epsilon) curves the
// way the paper's figures show them, so a bench run can be eyeballed without
// exporting the CSVs.
#pragma once

#include <string>
#include <vector>

namespace rhw::exp {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 64;    // interior columns
  int height = 18;   // interior rows
  std::string title;
  std::string x_label = "eps";
  std::string y_label = "AL";
  // Fixed y-range; NaN-free sentinel: when min == max the range is derived
  // from the data.
  double y_min = 0.0;
  double y_max = 0.0;
};

// Returns a multi-line string. Each series gets a distinct marker, listed in
// the legend. Points are plotted at nearest cells; later series overdraw.
std::string render_ascii_plot(const std::vector<Series>& series,
                              const PlotOptions& options = {});

}  // namespace rhw::exp
