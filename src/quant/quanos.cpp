#include "quant/quanos.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attacks/fgsm.hpp"
#include "core/stats.hpp"
#include "quant/quantizer.hpp"

namespace rhw::quant {

namespace {

// Per-layer activation snapshots for one forward pass.
struct Capture {
  std::vector<Tensor> activations;
};

void attach_capture_hooks(const std::vector<nn::Module*>& layers,
                          Capture& capture) {
  capture.activations.assign(layers.size(), Tensor());
  for (size_t i = 0; i < layers.size(); ++i) {
    Tensor* slot = &capture.activations[i];
    layers[i]->set_post_hook([slot](Tensor& t) { *slot = t; });
  }
}

void clear_hooks(const std::vector<nn::Module*>& layers) {
  for (nn::Module* m : layers) m->clear_post_hook();
}

}  // namespace

QuanosReport apply_quanos(nn::Module& model, const data::Dataset& sample,
                          const QuanosConfig& cfg) {
  auto layers = nn::collect_weight_layers(model);
  if (layers.empty()) throw std::invalid_argument("apply_quanos: no layers");
  const bool was_training = model.training();
  model.set_training(false);

  const auto probe = sample.head(cfg.sample_count);
  QuanosReport report;
  report.ans.assign(layers.size(), 0.0);
  int64_t batches = 0;

  Capture capture;
  for (int64_t begin = 0; begin < probe.size(); begin += cfg.batch_size) {
    const auto batch = probe.slice(begin, begin + cfg.batch_size);
    // Adversarial probe (hooks are disabled inside the gradient pass).
    attacks::FgsmConfig fc;
    fc.epsilon = cfg.ans_epsilon;
    const Tensor adv = attacks::fgsm(model, batch.images, batch.labels, fc);

    attach_capture_hooks(layers, capture);
    (void)model.forward(batch.images);
    std::vector<Tensor> clean_acts = std::move(capture.activations);
    attach_capture_hooks(layers, capture);
    (void)model.forward(adv);
    std::vector<Tensor> adv_acts = std::move(capture.activations);
    clear_hooks(layers);

    for (size_t l = 0; l < layers.size(); ++l) {
      const double clean_norm = clean_acts[l].l2_norm();
      const double delta = adv_acts[l].sub(clean_acts[l]).l2_norm();
      report.ans[l] += delta / std::max(clean_norm, 1e-9);
    }
    ++batches;
  }
  for (double& a : report.ans) a /= std::max<int64_t>(1, batches);

  std::vector<double> sorted(report.ans.begin(), report.ans.end());
  report.ans_median = rhw::median_of(sorted);

  // Assignment: high-sensitivity layers get the aggressive bitwidth.
  report.bits.resize(layers.size());
  for (size_t l = 0; l < layers.size(); ++l) {
    report.bits[l] =
        report.ans[l] >= report.ans_median ? cfg.low_bits : cfg.high_bits;
  }

  // Apply: fake-quantize weights, install activation quantization hooks.
  for (size_t l = 0; l < layers.size(); ++l) {
    const int bits = report.bits[l];
    for (nn::Param* p : layers[l]->parameters()) {
      if (p->name == "weight") fake_quantize_symmetric_(p->value, bits);
    }
    layers[l]->set_post_hook(
        [bits](Tensor& t) { fake_quantize_symmetric_(t, bits); });
  }

  model.set_training(was_training);
  return report;
}

}  // namespace rhw::quant
