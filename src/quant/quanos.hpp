// QUANOS (P. Panda, 2020; ref. [8]): Adversarial Noise Sensitivity (ANS)
// driven hybrid quantization.
//
// ANS of a layer measures how strongly an adversarial input perturbs that
// layer's activations relative to their clean magnitude:
//   ANS_l = E_x [ ||a_l(x_adv) - a_l(x)||_2 / ||a_l(x)||_2 ]
// Layers with above-median ANS are quantized aggressively (low_bits) — the
// coarse grid absorbs the adversarial perturbation — while the rest keep
// high_bits. Weights are fake-quantized once; activations are fake-quantized
// through post-forward hooks at inference.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"

namespace rhw::quant {

struct QuanosConfig {
  int high_bits = 8;
  int low_bits = 4;
  float ans_epsilon = 0.05f;   // FGSM strength used to probe sensitivity
  int64_t sample_count = 128;  // images used for the ANS estimate
  int64_t batch_size = 64;
};

struct QuanosReport {
  std::vector<double> ans;       // per weight layer, execution order
  std::vector<int> bits;         // assigned activation/weight bitwidths
  double ans_median = 0.0;
};

// Computes ANS on `model` (treated as the trained float baseline), then
// mutates it in place: weights fake-quantized per assignment, activation
// fake-quantization hooks installed on each weight layer's output. The caller
// should pass a clone if the original is still needed.
QuanosReport apply_quanos(nn::Module& model, const data::Dataset& sample,
                          const QuanosConfig& cfg);

}  // namespace rhw::quant
