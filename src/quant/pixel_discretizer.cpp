#include "quant/pixel_discretizer.hpp"

#include <algorithm>
#include <cmath>

namespace rhw::quant {

Tensor PixelDiscretizer::apply(const Tensor& images) const {
  const auto max_level = static_cast<float>(levels() - 1);
  Tensor out = images;
  for (float& v : out.span()) {
    v = std::clamp(std::nearbyint(v * max_level), 0.f, max_level) / max_level;
  }
  return out;
}

}  // namespace rhw::quant
