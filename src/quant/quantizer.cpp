#include "quant/quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rhw::quant {

SymmetricParams compute_symmetric(const Tensor& t, int bits) {
  if (bits < 2 || bits > 16) {
    throw std::invalid_argument("compute_symmetric: bits in [2,16]");
  }
  SymmetricParams p;
  p.bits = bits;
  const float amax = t.abs_max();
  p.scale = amax > 0.f ? amax / static_cast<float>(p.qmax()) : 1.f;
  return p;
}

UnsignedParams compute_unsigned(const Tensor& t, int bits) {
  if (bits < 1 || bits > 16) {
    throw std::invalid_argument("compute_unsigned: bits in [1,16]");
  }
  UnsignedParams p;
  p.bits = bits;
  const float mx = t.max();
  p.scale = mx > 0.f ? mx / static_cast<float>(p.qmax()) : 1.f;
  return p;
}

void fake_quantize_symmetric_(Tensor& t, int bits) {
  const auto p = compute_symmetric(t, bits);
  const float qmaxf = static_cast<float>(p.qmax());
  const float qminf = static_cast<float>(p.qmin());
  for (float& v : t.span()) {
    const float q = std::clamp(std::nearbyint(v / p.scale), qminf, qmaxf);
    v = q * p.scale;
  }
}

void fake_quantize_unsigned_(Tensor& t, int bits) {
  const auto p = compute_unsigned(t, bits);
  const float qmaxf = static_cast<float>(p.qmax());
  for (float& v : t.span()) {
    const float q = std::clamp(std::nearbyint(v / p.scale), 0.f, qmaxf);
    v = q * p.scale;
  }
}

std::vector<uint8_t> to_codes_unsigned(const Tensor& t,
                                       const UnsignedParams& params) {
  if (params.bits > 8) {
    throw std::invalid_argument("to_codes_unsigned: at most 8 bits per word");
  }
  std::vector<uint8_t> codes(static_cast<size_t>(t.numel()));
  const float qmaxf = static_cast<float>(params.qmax());
  const float* v = t.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<uint8_t>(
        std::clamp(std::nearbyint(v[i] / params.scale), 0.f, qmaxf));
  }
  return codes;
}

void from_codes_unsigned(const std::vector<uint8_t>& codes,
                         const UnsignedParams& params, Tensor& out) {
  if (static_cast<int64_t>(codes.size()) != out.numel()) {
    throw std::invalid_argument("from_codes_unsigned: size mismatch");
  }
  float* v = out.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    v[i] = static_cast<float>(codes[i]) * params.scale;
  }
}

std::vector<int8_t> to_codes_signed(const Tensor& t,
                                    const SymmetricParams& params) {
  if (params.bits > 8) {
    throw std::invalid_argument("to_codes_signed: at most 8 bits per word");
  }
  std::vector<int8_t> codes(static_cast<size_t>(t.numel()));
  const float qmaxf = static_cast<float>(params.qmax());
  const float qminf = static_cast<float>(params.qmin());
  const float* v = t.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<int8_t>(
        std::clamp(std::nearbyint(v[i] / params.scale), qminf, qmaxf));
  }
  return codes;
}

void from_codes_signed(const std::vector<int8_t>& codes,
                       const SymmetricParams& params, Tensor& out) {
  if (static_cast<int64_t>(codes.size()) != out.numel()) {
    throw std::invalid_argument("from_codes_signed: size mismatch");
  }
  float* v = out.data();
  for (size_t i = 0; i < codes.size(); ++i) {
    v[i] = static_cast<float>(codes[i]) * params.scale;
  }
}

}  // namespace rhw::quant
