// Uniform quantization utilities.
//
// Two flavours are used in the repo:
//  - fake quantization (quantize-dequantize in float), for the QUANOS and
//    pixel-discretization defenses;
//  - code-level quantization to integer words, for the SRAM bit-error model
//    (see sram/hybrid_word.hpp) which needs actual bit patterns to corrupt.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.hpp"

namespace rhw::quant {

using rhw::Tensor;

// Symmetric signed quantization: scale = max|x| / (2^{bits-1} - 1).
struct SymmetricParams {
  float scale = 1.f;
  int bits = 8;
  int32_t qmax() const { return (1 << (bits - 1)) - 1; }
  int32_t qmin() const { return -qmax() - 1; }
};

SymmetricParams compute_symmetric(const Tensor& t, int bits);

// Unsigned quantization for non-negative data (post-ReLU activation
// memories): scale = max(x) / (2^bits - 1).
struct UnsignedParams {
  float scale = 1.f;
  int bits = 8;
  uint32_t qmax() const { return (1u << bits) - 1u; }
};

UnsignedParams compute_unsigned(const Tensor& t, int bits);

// In-place fake quantization (round to grid, stay in float).
void fake_quantize_symmetric_(Tensor& t, int bits);
void fake_quantize_unsigned_(Tensor& t, int bits);

// Code-level conversion used by the SRAM injector. Values are clamped to the
// representable range.
std::vector<uint8_t> to_codes_unsigned(const Tensor& t,
                                       const UnsignedParams& params);
void from_codes_unsigned(const std::vector<uint8_t>& codes,
                         const UnsignedParams& params, Tensor& out);

std::vector<int8_t> to_codes_signed(const Tensor& t,
                                    const SymmetricParams& params);
void from_codes_signed(const std::vector<int8_t>& codes,
                       const SymmetricParams& params, Tensor& out);

}  // namespace rhw::quant
