// Input-space discretization defense (Panda et al., "Discretization based
// solutions for secure machine learning against adversarial attacks", 2019;
// ref. [6] of the paper): restrict input pixels from 8-bit (256 levels) to
// fewer levels, e.g. 4-bit (16 levels), which masks small perturbations.
#pragma once

#include "core/tensor.hpp"
#include "nn/module.hpp"

namespace rhw::quant {

using rhw::Tensor;

struct PixelDiscretizer {
  int bits = 4;

  // Rounds each pixel (assumed in [0,1]) to the nearest of 2^bits levels.
  Tensor apply(const Tensor& images) const;
  int levels() const { return 1 << bits; }
};

// Wraps an existing network: forward discretizes the input, then delegates.
// Gradients flow straight through the discretizer (straight-through
// estimator), which is how attacks on discretized models are evaluated in
// [6].
class DiscretizedModel final : public nn::Module {
 public:
  DiscretizedModel(nn::Module& inner, PixelDiscretizer disc)
      : inner_(&inner), disc_(disc) {}

  std::vector<nn::Param*> parameters() override { return inner_->parameters(); }
  std::vector<nn::Module*> children() override { return {inner_}; }
  std::vector<std::pair<std::string, Tensor*>> named_state() override {
    return {};
  }
  std::string type_name() const override { return "DiscretizedModel"; }
  void set_training(bool training) override {
    nn::Module::set_training(training);
    inner_->set_training(training);
  }

 protected:
  Tensor do_forward(const Tensor& x) override {
    return inner_->forward(disc_.apply(x));
  }
  Tensor do_backward(const Tensor& grad_out) override {
    return inner_->backward(grad_out);  // straight-through
  }

 private:
  nn::Module* inner_;  // non-owning
  PixelDiscretizer disc_;
};

}  // namespace rhw::quant
