#include "serve/loadgen.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "core/rng.hpp"

namespace rhw::serve {

LoadGen::LoadGen(LoadGenConfig config) : config_(std::move(config)) {
  if (config_.stages.empty()) {
    throw std::invalid_argument("loadgen: empty ramp (no stages)");
  }
  for (size_t i = 0; i < config_.stages.size(); ++i) {
    const RampStage& stage = config_.stages[i];
    if (!(stage.qps > 0.0)) {
      throw std::invalid_argument("loadgen stage " + std::to_string(i) +
                                  ": qps must be > 0");
    }
    if (stage.requests < 1) {
      throw std::invalid_argument("loadgen stage " + std::to_string(i) +
                                  ": requests must be >= 1");
    }
  }
}

std::vector<Arrival> LoadGen::schedule() const {
  std::vector<Arrival> out;
  size_t total = 0;
  for (const RampStage& stage : config_.stages) {
    total += static_cast<size_t>(stage.requests);
  }
  out.reserve(total);

  const uint64_t arrival_seed =
      derive_stream_seed(config_.seed, kServeArrivalStream);
  uint64_t id = 0;
  uint64_t t_us = 0;
  for (size_t s = 0; s < config_.stages.size(); ++s) {
    const RampStage& stage = config_.stages[s];
    // One independent stream per stage: appending or editing stage s+1 can
    // never perturb stage s's gaps.
    RandomEngine rng(derive_stream_seed(arrival_seed, s));
    for (int64_t r = 0; r < stage.requests; ++r) {
      // Exponential inter-arrival gap with mean 1/qps seconds. next_double()
      // is in [0, 1), so -log(1 - u) is finite and >= 0.
      const double gap_us =
          -std::log1p(-rng.next_double()) * 1e6 / stage.qps;
      t_us += static_cast<uint64_t>(std::llround(gap_us));
      out.push_back({id++, t_us, s});
    }
  }
  return out;
}

uint64_t LoadGen::duration_us() const {
  const std::vector<Arrival> arrivals = schedule();
  return arrivals.empty() ? 0 : arrivals.back().time_us;
}

}  // namespace rhw::serve
