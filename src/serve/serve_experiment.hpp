// The serving driver behind `rhw_run serve_smoke` / `rhw_run serve_curve`:
// the bridge between ExperimentSpec's serve knobs (serve=1, qps=, requests=,
// batch_max=, linger_us=, lanes=) and serve::Server + serve::LoadGen.
//
// For every (backend, defense) arm x offered-QPS point it builds a fresh
// Server from the panel's trained model, replays the LoadGen schedule
// against std::chrono::steady_clock, and records offered vs achieved QPS
// plus p50/p95/p99/mean/max latency — the latency-vs-offered-load curve
// whose saturation knee the compute-engine and batching knobs move. Results
// print as a table and land in an rhw-serve-v1 JSON artifact embedding the
// exact reproducing command (docs/SERVING.md has the schema).
//
// Request-level determinism is enforced, not just claimed: within an arm,
// every load point serves the identical request stream (ids restart at 0),
// so the order-independent result digests must match across points — the
// run fails loudly if batching timing ever leaks into results.
#pragma once

#include <string>

#include "exp/experiment_registry.hpp"

namespace rhw::serve {

// Lane count for the serving driver: $RHW_SERVE_LANES, or `fallback`.
unsigned serve_lanes_env(unsigned fallback);

// Runs one panel of a serve=1 spec (the serving counterpart of the sweep
// path in run_experiment). `artifact` is the output JSON path.
void run_serve_panel(const exp::ExperimentSpec& spec, exp::PanelContext& pc,
                     const exp::ExperimentStamp& stamp,
                     const std::string& artifact);

}  // namespace rhw::serve
