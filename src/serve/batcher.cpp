#include "serve/batcher.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>

namespace rhw::serve {

Batcher::Batcher(BatchPolicy policy) : policy_(policy) {
  if (policy_.batch_max < 1) {
    throw std::invalid_argument("batcher: batch_max must be >= 1");
  }
  if (policy_.linger_us < 0) {
    throw std::invalid_argument("batcher: linger_us must be >= 0");
  }
}

void Batcher::push(PendingRequest request) {
  queue_.push_back(std::move(request));
}

std::vector<PendingRequest> Batcher::pop_ready(uint64_t now_us, bool flush) {
  std::vector<PendingRequest> batch;
  if (queue_.empty()) return batch;
  const bool full = queue_.size() >= static_cast<size_t>(policy_.batch_max);
  if (!full && !flush && now_us < next_deadline_us()) return batch;
  const size_t take =
      std::min(queue_.size(), static_cast<size_t>(policy_.batch_max));
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

uint64_t Batcher::next_deadline_us() const {
  if (queue_.empty()) return UINT64_MAX;
  return queue_.front().enqueue_us + static_cast<uint64_t>(policy_.linger_us);
}

}  // namespace rhw::serve
