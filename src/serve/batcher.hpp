// serve::Batcher: the dynamic micro-batching policy, factored out of the
// threaded Server so the batching invariants are testable in virtual time.
//
// Requests queue in submission order; a micro-batch forms when any of
//   * the queue holds batch_max requests (size trigger),
//   * the oldest queued request has waited linger_us (deadline trigger),
//   * the caller flushes (shutdown drain).
// The Batcher never reads a clock: callers pass `now_us` explicitly — the
// threaded Server feeds std::chrono::steady_clock ticks, the tests feed
// virtual time — so every invariant (a batch never exceeds batch_max, the
// linger deadline is honored exactly, FIFO order is preserved) is asserted
// deterministically in tests/serve/test_server.cpp.
//
// Not thread-safe by itself; Server serializes access under its queue mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "core/tensor.hpp"

namespace rhw::serve {

struct BatchPolicy {
  int64_t batch_max = 16;    // micro-batch size cap; >= 1
  int64_t linger_us = 2000;  // max wait of the oldest queued request; >= 0
};

// One queued classify request.
struct PendingRequest {
  uint64_t id = 0;
  Tensor input;            // [1, C, H, W]
  uint64_t enqueue_us = 0;
};

class Batcher {
 public:
  // Throws std::invalid_argument on a degenerate policy.
  explicit Batcher(BatchPolicy policy);

  void push(PendingRequest request);

  // The next micro-batch if one is ready at `now_us` (or if `flush` and the
  // queue is non-empty), else empty. Never returns more than batch_max
  // requests; always the oldest ones, in submission order.
  std::vector<PendingRequest> pop_ready(uint64_t now_us, bool flush = false);

  // Absolute virtual time at which pop_ready() will fire on the deadline
  // trigger (oldest enqueue + linger); UINT64_MAX when the queue is empty.
  uint64_t next_deadline_us() const;

  size_t depth() const { return queue_.size(); }
  const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
  std::deque<PendingRequest> queue_;
};

}  // namespace rhw::serve
