// serve::Server: a batching robust-inference server over one (hw-spec,
// defense-spec) arm — the serving counterpart of exp::SweepEngine.
//
// Requests enter an in-process queue via submit(); worker lanes drain it
// through a serve::Batcher (max batch size + max linger deadline) and run
// each micro-batch on the lane's own prepared backend replica. Replicas are
// built exactly like SweepEngine's pools: the prototype pays for defense
// hardening and (possibly calibration-driven) prepare() once, later lanes
// reproduce its state via HardwareBackend::replicate() — so defense-wrapped
// arms ("ideal+jpeg_quant:bits=4") serve like any other hardware, from the
// same spec strings as sweeps.
//
// Determinism contract (the sweep engine's bar, extended to the async path):
// request id i evaluates under request_seed(seed, i) — a splitmix64-derived
// stream — regardless of which lane runs it, how requests were batched, or
// the wall-clock arrival pattern. Stochastic arms (live noise hooks detected
// via nn::reseed_noise_streams) are re-seeded per request and run requests
// individually; noise-free arms run one fused batched forward, whose
// per-sample results are bit-identical to a serial forward because kernel
// accumulation order within a sample does not depend on the batch dimension.
// Either way: same seed => same per-request outputs, at any lane count
// (tests/serve/test_server.cpp).
//
// Timing uses std::chrono::steady_clock exclusively (monotonic-clock-only
// rule, docs/LINT.md); latency aggregates stream into a LatencyHistogram.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/synth_cifar.hpp"
#include "defenses/registry.hpp"
#include "hw/registry.hpp"
#include "models/vgg.hpp"
#include "serve/batcher.hpp"
#include "serve/latency.hpp"

namespace rhw::serve {

// Stream id under the serve seed for per-request noise reseeding.
inline constexpr uint64_t kServeRequestStream = 0x5E12;

// One serving arm: the same (hw spec, defense spec, calibration) triple as
// exp::SweepBackendDef. train_data feeds training-time defenses (adv_train).
struct ServeArm {
  std::string key;      // display key ("ideal", "disc4b", ...)
  std::string hw = "ideal";
  std::string defense;  // defenses::DefenseRegistry spec; "" = none
  const data::Dataset* calibration = nullptr;
  const data::SynthCifar* train_data = nullptr;
};

struct ServerConfig {
  unsigned lanes = 1;        // worker lanes, one prepared replica each; >= 1
  int64_t batch_max = 16;    // micro-batch size cap
  int64_t linger_us = 2000;  // max queue wait of the oldest request
  uint64_t seed = 0xADE5;    // per-request seeds derive from this
};

// One completed request.
struct Reply {
  uint64_t id = 0;
  int64_t predicted = -1;   // argmax class
  float score = 0.f;        // max logit (bitwise parity checks)
  uint64_t enqueue_us = 0;  // vs the server's steady_clock epoch
  uint64_t done_us = 0;
  uint64_t latency_us = 0;
  uint64_t batch_size = 0;  // size of the micro-batch that carried it
  unsigned lane = 0;
};

// Aggregated view of a finished run.
struct ServeReport {
  uint64_t completed = 0;
  uint64_t batches = 0;
  double mean_batch = 0.0;
  double achieved_qps = 0.0;  // completed / (last done - first enqueue)
  double mean_us = 0.0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  // Order-independent fold of every (id, predicted) pair: two runs served
  // the same results iff their digests match, regardless of completion
  // order. The cheap request-level determinism check.
  uint64_t digest = 0;
  bool stochastic = false;
};

class Server {
 public:
  // `model` is the trained baseline (never mutated); geometry feeds
  // models::clone_model for the per-lane replicas.
  Server(const models::Model& model, float width_mult, int64_t in_size,
         ServeArm arm, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Builds the replicas (prototype first, then replicate() per extra lane)
  // and spawns the worker lanes. Throws the registries' token-naming
  // std::invalid_argument on a bad hw/defense spec.
  void start();

  // Enqueues one classify request ([C,H,W] or [1,C,H,W]); returns its id
  // (sequential from 0). Throws std::logic_error after shutdown().
  uint64_t submit(const Tensor& image);

  // Stops accepting, drains the queue (every submitted request completes),
  // joins the lanes. Idempotent.
  void shutdown();

  // Completed requests, sorted by id. Valid after shutdown().
  std::vector<Reply> replies() const;
  ServeReport report() const;

  bool stochastic() const { return stochastic_; }
  unsigned lanes() const { return config_.lanes; }
  // The prototype's serving backend display name ("Jpeg+Quant(ideal)", ...).
  std::string arm_name() const;

  // The per-request noise stream: derive(derive(seed, kServeRequestStream),
  // id). Exposed so tests reproduce any request serially.
  static uint64_t request_seed(uint64_t serve_seed, uint64_t request_id);

 private:
  struct Lane {
    models::Model model;
    hw::BackendPtr inner;
    hw::BackendPtr wrapped;  // defense wrapper; null = pass-through
    std::thread thread;
    hw::HardwareBackend* serving() const {
      return wrapped ? wrapped.get() : inner.get();
    }
  };

  uint64_t now_us() const;
  void worker(size_t lane_index);
  void execute(size_t lane_index, std::vector<PendingRequest> batch);
  void build_lanes();

  const models::Model* model_;
  float width_mult_;
  int64_t in_size_;
  ServeArm arm_;
  ServerConfig config_;
  std::chrono::steady_clock::time_point t0_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  bool started_ = false;
  bool stochastic_ = false;

  // Queue state (mu_): batcher, acceptance flag, id counter.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Batcher batcher_;
  bool accepting_ = false;
  uint64_t next_id_ = 0;
  uint64_t first_enqueue_us_ = 0;

  // Completion state (done_mu_): replies + streaming aggregates.
  mutable std::mutex done_mu_;
  std::vector<Reply> replies_;
  LatencyHistogram latency_;
  uint64_t batches_ = 0;
  uint64_t last_done_us_ = 0;
};

}  // namespace rhw::serve
