#include "serve/serve_experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "defenses/registry.hpp"
#include "exp/sweep_stats.hpp"
#include "exp/table_printer.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace rhw::serve {

namespace {

// One (arm, offered QPS) point of the latency-vs-load curve.
struct CurvePoint {
  std::string arm;
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  uint64_t completed = 0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  double mean_us = 0.0;
  double mean_batch = 0.0;
  uint64_t batches = 0;
  double accuracy = 0.0;
  uint64_t offered_duration_us = 0;
};

struct ArmResult {
  std::string key;
  std::string hw;
  std::string defense;       // normalized: "none" when empty
  std::string defense_name;  // display name of the resolved defense
  bool stochastic = false;
  uint64_t digest = 0;  // identical across the arm's load points (enforced)
};

}  // namespace

unsigned serve_lanes_env(unsigned fallback) {
  const char* env = std::getenv("RHW_SERVE_LANES");
  if (env == nullptr || *env == '\0') return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : fallback;
}

void run_serve_panel(const exp::ExperimentSpec& spec, exp::PanelContext& pc,
                     const exp::ExperimentStamp& stamp,
                     const std::string& artifact) {
  const auto default_lanes =
      static_cast<unsigned>(rhw::global_pool().size()) + 1;
  const unsigned lanes = spec.lanes > 0 ? static_cast<unsigned>(spec.lanes)
                                        : serve_lanes_env(default_lanes);

  const int64_t eval_n = pc.eval_set.size();
  if (eval_n == 0) {
    throw std::invalid_argument("serve: empty evaluation set");
  }
  // Request id i carries eval image (i mod N): the request stream is a pure
  // function of the spec, so every load point of an arm serves identical
  // work and their result digests must agree.
  const int64_t channels = pc.eval_set.images.dim(1);
  const int64_t height = pc.eval_set.images.dim(2);
  const int64_t width = pc.eval_set.images.dim(3);
  const int64_t sample = channels * height * width;
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<size_t>(eval_n));
  for (int64_t i = 0; i < eval_n; ++i) {
    inputs.push_back(Tensor::from_span(
        {1, channels, height, width},
        std::span<const float>(pc.eval_set.images.data() + i * sample,
                               static_cast<size_t>(sample))));
  }

  std::printf(
      "[serve] %u lane(s), batch_max=%lld, linger=%lldus, %lld requests and "
      "%zu load point(s) per arm\n",
      lanes, static_cast<long long>(spec.batch_max),
      static_cast<long long>(spec.linger_us),
      static_cast<long long>(spec.requests), spec.qps.size());

  std::vector<CurvePoint> curve;
  std::vector<ArmResult> arms;
  for (const auto& backend : spec.backends) {
    ServeArm arm;
    arm.key = backend.key;
    arm.hw = backend.hw;
    arm.defense = backend.defense;
    arm.calibration = backend.calibrate ? &pc.data.test : nullptr;
    arm.train_data = &pc.data;

    ArmResult info;
    info.key = backend.key;
    info.hw = backend.hw;
    info.defense = backend.defense.empty() ? "none" : backend.defense;
    info.defense_name =
        defenses::make_defense(info.defense)->name();
    bool have_digest = false;

    for (const float qps : spec.qps) {
      ServerConfig cfg;
      cfg.lanes = lanes;
      cfg.batch_max = spec.batch_max;
      cfg.linger_us = spec.linger_us;
      cfg.seed = spec.seed;
      Server server(pc.model, pc.arch.width_mult, pc.arch.in_size, arm, cfg);
      server.start();

      const LoadGen gen(
          {{RampStage{static_cast<double>(qps), spec.requests}}, spec.seed});
      const std::vector<Arrival> arrivals = gen.schedule();
      const auto t0 = std::chrono::steady_clock::now();
      for (const Arrival& a : arrivals) {
        std::this_thread::sleep_until(t0 +
                                      std::chrono::microseconds(a.time_us));
        server.submit(
            inputs[static_cast<size_t>(a.id % static_cast<uint64_t>(eval_n))]);
      }
      server.shutdown();

      const ServeReport rep = server.report();
      int64_t correct = 0;
      for (const Reply& reply : server.replies()) {
        const auto label_index =
            static_cast<size_t>(reply.id % static_cast<uint64_t>(eval_n));
        if (reply.predicted == pc.eval_set.labels[label_index]) ++correct;
      }

      // The async determinism contract, enforced per run: identical request
      // streams must serve identical results no matter how load shaped the
      // batches.
      if (!have_digest) {
        info.digest = rep.digest;
        info.stochastic = rep.stochastic;
        have_digest = true;
      } else if (rep.digest != info.digest) {
        throw std::runtime_error(
            "serve: result digest drifted across load points on arm '" +
            backend.key + "' — batching leaked into results");
      }

      CurvePoint pt;
      pt.arm = backend.key;
      pt.offered_qps = static_cast<double>(qps);
      pt.achieved_qps = rep.achieved_qps;
      pt.completed = rep.completed;
      pt.p50_us = rep.p50_us;
      pt.p95_us = rep.p95_us;
      pt.p99_us = rep.p99_us;
      pt.max_us = rep.max_us;
      pt.mean_us = rep.mean_us;
      pt.mean_batch = rep.mean_batch;
      pt.batches = rep.batches;
      pt.accuracy = rep.completed == 0
                        ? 0.0
                        : 100.0 * static_cast<double>(correct) /
                              static_cast<double>(rep.completed);
      pt.offered_duration_us = arrivals.empty() ? 0 : arrivals.back().time_us;
      curve.push_back(pt);
    }
    arms.push_back(std::move(info));
  }

  exp::TablePrinter table({"arm", "offered qps", "achieved qps", "done",
                           "p50 us", "p95 us", "p99 us", "mean us", "batch",
                           "acc %"});
  for (const CurvePoint& pt : curve) {
    table.add_row({pt.arm, exp::fmt(pt.offered_qps, 0),
                   exp::fmt(pt.achieved_qps, 1), std::to_string(pt.completed),
                   std::to_string(pt.p50_us), std::to_string(pt.p95_us),
                   std::to_string(pt.p99_us), exp::fmt(pt.mean_us, 0),
                   exp::fmt(pt.mean_batch, 1), exp::fmt(pt.accuracy, 1)});
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/" + pc.tag + ".csv");

  // The knee, summarized per arm: the highest offered load the arm still
  // kept up with, and how far the achieved rate plateaued below the top
  // offered rate once saturated.
  for (const ArmResult& info : arms) {
    double kept_up = 0.0;
    double top_offered = 0.0;
    double top_achieved = 0.0;
    for (const CurvePoint& pt : curve) {
      if (pt.arm != info.key) continue;
      if (pt.achieved_qps >= 0.8 * pt.offered_qps) {
        kept_up = std::max(kept_up, pt.offered_qps);
      }
      if (pt.offered_qps > top_offered) {
        top_offered = pt.offered_qps;
        top_achieved = pt.achieved_qps;
      }
    }
    std::printf(
        "[serve] arm %-10s (%s): kept up through %.0f qps; at %.0f qps "
        "offered it achieved %.1f qps%s digest %016llx\n",
        info.key.c_str(), info.stochastic ? "stochastic" : "fused-batch",
        kept_up, top_offered, top_achieved,
        top_achieved < 0.8 * top_offered ? " (saturated);" : ";",
        static_cast<unsigned long long>(info.digest));
  }

  const std::filesystem::path path(artifact);
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream os(artifact);
  if (!os) throw std::runtime_error("serve: cannot open " + artifact);
  exp::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "rhw-serve-v1");
  w.field("figure", pc.tag);
  w.key("experiment");
  if (stamp.preset.empty()) {
    w.null_value();
  } else {
    w.begin_object();
    w.field("preset", stamp.preset);
    w.field("command", stamp.command());
    w.key("overrides");
    w.begin_array();
    for (const auto& token : stamp.overrides) w.value(token);
    w.end_array();
    w.key("canonical");
    w.begin_array();
    for (const auto& token : stamp.canonical) w.value(token);
    w.end_array();
    w.end_object();
  }
  w.field("engine", spec.engine);
  w.field("seed", spec.seed);
  w.field("lanes", static_cast<int64_t>(lanes));
  w.field("batch_max", spec.batch_max);
  w.field("linger_us", spec.linger_us);
  w.field("requests_per_point", spec.requests);
  w.key("arms");
  w.begin_array();
  for (const ArmResult& info : arms) {
    w.begin_object();
    w.field("key", info.key);
    w.field("spec", info.hw);
    w.field("defense", info.defense);
    w.field("defense_name", info.defense_name);
    w.field("stochastic", info.stochastic);
    w.field("digest", info.digest);
    w.end_object();
  }
  w.end_array();
  w.key("curve");
  w.begin_array();
  for (const CurvePoint& pt : curve) {
    w.begin_object();
    w.field("arm", pt.arm);
    w.field("offered_qps", pt.offered_qps);
    w.field("achieved_qps", pt.achieved_qps);
    w.field("completed", pt.completed);
    w.field("p50_us", pt.p50_us);
    w.field("p95_us", pt.p95_us);
    w.field("p99_us", pt.p99_us);
    w.field("max_us", pt.max_us);
    w.field("mean_us", pt.mean_us);
    w.field("mean_batch", pt.mean_batch);
    w.field("batches", pt.batches);
    w.field("accuracy", pt.accuracy);
    w.field("offered_duration_us", pt.offered_duration_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  std::printf("[serve] wrote %s\n", artifact.c_str());
}

}  // namespace rhw::serve
