#include "serve/latency.hpp"

#include <bit>
#include <cmath>

namespace rhw::serve {

size_t LatencyHistogram::index_of(uint64_t v) {
  if (v < kSub) return static_cast<size_t>(v);
  // msb >= kSubBits; the top kSubBits bits below it pick the sub-bucket.
  const int msb = 63 - std::countl_zero(v);
  const auto octave = static_cast<size_t>(msb - kSubBits + 1);
  const auto sub =
      static_cast<size_t>((v >> (msb - kSubBits)) & (kSub - 1));
  return (octave << kSubBits) + sub;
}

uint64_t LatencyHistogram::bucket_low(size_t index) {
  if (index < kSub) return index;
  const size_t octave = index >> kSubBits;
  const uint64_t sub = index & (kSub - 1);
  const int msb = static_cast<int>(octave) + kSubBits - 1;
  return (1ULL << msb) | (sub << (msb - kSubBits));
}

uint64_t LatencyHistogram::bucket_high(size_t index) {
  if (index < kSub) return index;
  const size_t octave = index >> kSubBits;
  const int msb = static_cast<int>(octave) + kSubBits - 1;
  return bucket_low(index) + (1ULL << (msb - kSubBits)) - 1;
}

void LatencyHistogram::record(uint64_t value_us) {
  ++counts_[index_of(value_us)];
  ++count_;
  if (value_us > max_) max_ = value_us;
  sum_ += static_cast<double>(value_us);
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  auto rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      return (bucket_low(i) + bucket_high(i)) / 2;
    }
  }
  return max_;  // unreachable: ranks are clamped to the recorded count
}

}  // namespace rhw::serve
