#include "serve/server.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/rng.hpp"
#include "models/zoo.hpp"
#include "nn/module.hpp"

namespace rhw::serve {

namespace {

// [C,H,W] or [1,C,H,W] -> an owned [1,C,H,W] copy.
Tensor normalize_input(const Tensor& image) {
  if (image.rank() == 3) {
    return image.reshaped({1, image.dim(0), image.dim(1), image.dim(2)});
  }
  if (image.rank() == 4 && image.dim(0) == 1) return image;
  throw std::invalid_argument(
      "serve: submit expects one [C,H,W] or [1,C,H,W] image");
}

}  // namespace

uint64_t Server::request_seed(uint64_t serve_seed, uint64_t request_id) {
  return derive_stream_seed(derive_stream_seed(serve_seed, kServeRequestStream),
                            request_id);
}

Server::Server(const models::Model& model, float width_mult, int64_t in_size,
               ServeArm arm, ServerConfig config)
    : model_(&model),
      width_mult_(width_mult),
      in_size_(in_size),
      arm_(std::move(arm)),
      config_(config),
      batcher_(BatchPolicy{config.batch_max, config.linger_us}) {
  if (config_.lanes < 1) {
    throw std::invalid_argument("serve: lanes must be >= 1");
  }
}

Server::~Server() { shutdown(); }

void Server::build_lanes() {
  const defenses::DefensePtr defense =
      defenses::make_defense(arm_.defense.empty() ? "none" : arm_.defense);
  defenses::DefenseContext dctx;
  dctx.train_data = arm_.train_data;
  dctx.calibration = arm_.calibration;

  // The prototype (lane 0) pays for defense hardening and the full —
  // possibly calibration-driven — prepare() once; every further lane
  // reproduces its state bit-for-bit, exactly like SweepEngine's replica
  // pools. Lanes are built serially here: serving cost is steady-state, not
  // startup, and serial construction keeps the defense-hardening path
  // trivially race-free.
  Lane* prototype = nullptr;
  for (unsigned i = 0; i < config_.lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    if (prototype != nullptr && defense->replicable_by_clone()) {
      lane->model =
          models::clone_model(prototype->model, width_mult_, in_size_);
    } else {
      lane->model = models::clone_model(*model_, width_mult_, in_size_);
      defense->harden(lane->model, dctx);
    }
    hw::BackendPtr backend =
        prototype != nullptr ? prototype->inner->replicate() : nullptr;
    const data::Dataset* calibration = backend ? nullptr : arm_.calibration;
    if (!backend) backend = hw::make_backend(arm_.hw);
    backend->prepare(lane->model, calibration);
    lane->inner = std::move(backend);
    lane->wrapped = defense->wrap(*lane->inner);
    if (prototype == nullptr) prototype = lane.get();
    lanes_.push_back(std::move(lane));
  }

  // An arm with live noise streams (stochastic substrate or defense wrapper)
  // must be re-seeded and run per request; a noise-free arm has no seeders
  // and this call is a no-op, unlocking the fused batched forward.
  stochastic_ = nn::reseed_noise_streams(lanes_[0]->serving()->module(),
                                         request_seed(config_.seed, 0)) > 0;
}

void Server::start() {
  if (started_) throw std::logic_error("serve: start() called twice");
  build_lanes();
  t0_ = std::chrono::steady_clock::now();
  {
    std::lock_guard lock(mu_);
    accepting_ = true;
  }
  for (size_t i = 0; i < lanes_.size(); ++i) {
    lanes_[i]->thread = std::thread([this, i] { worker(i); });
  }
  started_ = true;
}

uint64_t Server::now_us() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0_)
          .count());
}

uint64_t Server::submit(const Tensor& image) {
  Tensor input = normalize_input(image);
  uint64_t id = 0;
  {
    std::lock_guard lock(mu_);
    if (!accepting_) {
      throw std::logic_error("serve: submit() after shutdown()");
    }
    id = next_id_++;
    const uint64_t t = now_us();
    if (id == 0) first_enqueue_us_ = t;
    batcher_.push({id, std::move(input), t});
  }
  cv_.notify_one();
  return id;
}

void Server::worker(size_t lane_index) {
  for (;;) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock lock(mu_);
      for (;;) {
        batch = batcher_.pop_ready(now_us(), !accepting_);
        if (!batch.empty()) break;
        if (batcher_.depth() == 0) {
          if (!accepting_) return;  // drained; shutdown() is joining us
          cv_.wait(lock);
        } else {
          // Requests queued but the size trigger hasn't fired: sleep until
          // the oldest request's linger deadline (or an earlier notify).
          cv_.wait_until(lock, t0_ + std::chrono::microseconds(
                                         batcher_.next_deadline_us()));
        }
      }
    }
    execute(lane_index, std::move(batch));
  }
}

void Server::execute(size_t lane_index, std::vector<PendingRequest> batch) {
  hw::HardwareBackend* serving = lanes_[lane_index]->serving();
  const size_t n = batch.size();
  std::vector<int64_t> predicted(n);
  std::vector<float> score(n);

  auto score_rows = [&](const Tensor& logits, size_t base) {
    const std::vector<int64_t> argmax = logits.argmax_rows();
    const int64_t classes = logits.dim(1);
    for (int64_t row = 0; row < logits.dim(0); ++row) {
      predicted[base + static_cast<size_t>(row)] = argmax[row];
      score[base + static_cast<size_t>(row)] =
          logits.data()[row * classes + argmax[row]];
    }
  };

  if (stochastic_) {
    // Live noise streams: pin each request to its derived seed and run it
    // alone, so the result depends only on (serve seed, request id) — never
    // on which lane ran it or what shared a micro-batch with it.
    for (size_t i = 0; i < n; ++i) {
      nn::reseed_noise_streams(serving->module(),
                               request_seed(config_.seed, batch[i].id));
      score_rows(serving->forward(batch[i].input), i);
    }
  } else {
    // Noise-free arm: one fused batched forward. Per-sample results are
    // bit-identical to a serial forward because every kernel accumulates
    // within a sample in an order independent of the batch dimension
    // (asserted by tests/serve/test_server.cpp).
    const Tensor& first = batch[0].input;
    Tensor fused({static_cast<int64_t>(n), first.dim(1), first.dim(2),
                  first.dim(3)});
    const size_t sample = static_cast<size_t>(first.numel());
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(fused.data() + i * sample, batch[i].input.data(),
                  sample * sizeof(float));
    }
    score_rows(serving->forward(fused), 0);
  }

  const uint64_t done = now_us();
  {
    std::lock_guard lock(done_mu_);
    for (size_t i = 0; i < n; ++i) {
      Reply reply;
      reply.id = batch[i].id;
      reply.predicted = predicted[i];
      reply.score = score[i];
      reply.enqueue_us = batch[i].enqueue_us;
      reply.done_us = done;
      reply.latency_us = done - batch[i].enqueue_us;
      reply.batch_size = n;
      reply.lane = static_cast<unsigned>(lane_index);
      latency_.record(reply.latency_us);
      replies_.push_back(reply);
    }
    ++batches_;
    if (done > last_done_us_) last_done_us_ = done;
  }
}

void Server::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (!accepting_ && !started_) return;
    accepting_ = false;
  }
  cv_.notify_all();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
  started_ = false;
}

std::vector<Reply> Server::replies() const {
  std::lock_guard lock(done_mu_);
  std::vector<Reply> out = replies_;
  std::sort(out.begin(), out.end(),
            [](const Reply& a, const Reply& b) { return a.id < b.id; });
  return out;
}

ServeReport Server::report() const {
  ServeReport report;
  report.stochastic = stochastic_;
  uint64_t first_enqueue = 0;
  {
    std::lock_guard lock(mu_);
    first_enqueue = first_enqueue_us_;
  }
  std::lock_guard lock(done_mu_);
  report.completed = latency_.count();
  report.batches = batches_;
  report.mean_batch =
      batches_ == 0 ? 0.0
                    : static_cast<double>(report.completed) /
                          static_cast<double>(batches_);
  if (last_done_us_ > first_enqueue && report.completed > 0) {
    report.achieved_qps =
        static_cast<double>(report.completed) /
        (static_cast<double>(last_done_us_ - first_enqueue) * 1e-6);
  }
  report.mean_us = latency_.mean();
  report.p50_us = latency_.percentile(50.0);
  report.p95_us = latency_.percentile(95.0);
  report.p99_us = latency_.percentile(99.0);
  report.max_us = latency_.max();
  for (const Reply& reply : replies_) {
    report.digest ^= derive_stream_seed(
        reply.id, static_cast<uint64_t>(reply.predicted) + 1);
  }
  return report;
}

std::string Server::arm_name() const {
  if (lanes_.empty()) return arm_.key;
  return lanes_[0]->serving()->name();
}

}  // namespace rhw::serve
