// serve::LoadGen: deterministic open-loop Poisson load generation.
//
// A LoadGen turns (seed, QPS ramp stages) into a fully precomputed arrival
// schedule in *virtual microseconds*: inter-arrival gaps are exponential with
// the stage's rate, drawn from one RandomEngine stream derived (splitmix64)
// per stage. Because the schedule is a pure function of the config —
// computed up front on per-stage streams, never on worker threads — it is
// bit-identical at any server lane count, and editing a later ramp stage
// never perturbs an earlier one (stage-prefix property,
// tests/serve/test_loadgen.cpp).
//
// Open-loop means arrivals do not wait for responses: past the server's
// saturation knee the queue grows without bound and tail latency explodes,
// which is exactly the curve BENCH_serve.json records (docs/SERVING.md).
//
// The schedule *is* the virtual-time mode: tests assert on it directly with
// no clock anywhere. Real-time serving (exp/serve_experiment.cpp) replays it
// against std::chrono::steady_clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhw::serve {

// Stream id under the serve seed for arrival-gap RNG (stage index derived
// on top, so every stage owns an independent stream).
inline constexpr uint64_t kServeArrivalStream = 0xA331;

// One constant-rate segment of the offered-load ramp.
struct RampStage {
  double qps = 100.0;      // offered load, requests/second; > 0
  int64_t requests = 100;  // arrivals in this stage; >= 1
};

struct LoadGenConfig {
  std::vector<RampStage> stages;
  uint64_t seed = 0xADE5;  // attacks::kDefaultEvalSeed
};

// One scheduled request arrival.
struct Arrival {
  uint64_t id = 0;       // submission order, 0-based across all stages
  uint64_t time_us = 0;  // virtual microseconds since schedule start
  size_t stage = 0;      // index into LoadGenConfig::stages
};

class LoadGen {
 public:
  // Throws std::invalid_argument on an empty ramp or a degenerate stage
  // (qps <= 0, requests < 1), naming the offending stage.
  explicit LoadGen(LoadGenConfig config);

  const LoadGenConfig& config() const { return config_; }

  // The full schedule: arrivals in nondecreasing time order, ids sequential.
  // Deterministic in (seed, stages) alone.
  std::vector<Arrival> schedule() const;

  // Total virtual duration (last arrival time); 0 for a single arrival at 0.
  uint64_t duration_us() const;

 private:
  LoadGenConfig config_;
};

}  // namespace rhw::serve
