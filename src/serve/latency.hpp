// Streaming latency statistics for the serving path (serve::Server).
//
// LatencyHistogram is an HDR-style log-bucketed histogram over non-negative
// integer microsecond values: exact unit buckets below 2^kSubBits, then
// 2^kSubBits sub-buckets per power of two above that, which bounds the
// relative error of any reported quantile by the bucket width
// (2^-(kSubBits+1) ~ 1.6% for kSubBits = 5) at every scale from 1 us to
// ~centuries. record() is O(1) with no allocation after construction, so the
// server can call it under its completion lock; percentile() walks the fixed
// bucket array at report time.
//
// The histogram never reads a clock. Callers feed durations measured on
// std::chrono::steady_clock (the repo's monotonic-clock-only rule,
// docs/LINT.md) — or synthetic values, which is how the estimator is tested
// against exact sorted quantiles (tests/serve/test_loadgen.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rhw::serve {

class LatencyHistogram {
 public:
  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(uint64_t value_us);

  uint64_t count() const { return count_; }
  uint64_t max() const { return max_; }   // exact, not bucketed
  double mean() const;                    // exact (running sum)

  // Nearest-rank percentile estimate for p in [0, 100]: the midpoint of the
  // bucket holding rank ceil(p/100 * count). Exact below 2^kSubBits us;
  // relative error bounded by half a bucket width above. 0 when empty.
  uint64_t percentile(double p) const;

  static constexpr int kSubBits = 5;  // 32 sub-buckets per octave

 private:
  static constexpr uint64_t kSub = 1ULL << kSubBits;
  static constexpr size_t kBuckets = static_cast<size_t>(64 - kSubBits + 1)
                                     << kSubBits;

  static size_t index_of(uint64_t v);
  // Inclusive [low, high] value range a bucket covers.
  static uint64_t bucket_low(size_t index);
  static uint64_t bucket_high(size_t index);

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace rhw::serve
