#include "xbar/nonideal.hpp"

#include <stdexcept>

namespace rhw::xbar {

double series_path_resistance(int64_t i, int64_t j, const CrossbarSpec& spec) {
  return static_cast<double>(j + 1) * spec.r_wire_row +
         static_cast<double>(spec.rows - i) * spec.r_wire_col;
}

std::vector<double> nonideal_conductances(const std::vector<double>& g,
                                          const CrossbarSpec& spec) {
  if (static_cast<int64_t>(g.size()) != spec.rows * spec.cols) {
    throw std::invalid_argument("nonideal_conductances: size mismatch");
  }
  // Row/column total conductances drive the crowding factors.
  std::vector<double> row_sum(static_cast<size_t>(spec.rows), 0.0);
  std::vector<double> col_sum(static_cast<size_t>(spec.cols), 0.0);
  for (int64_t i = 0; i < spec.rows; ++i) {
    for (int64_t j = 0; j < spec.cols; ++j) {
      const double gij = g[static_cast<size_t>(i * spec.cols + j)];
      row_sum[static_cast<size_t>(i)] += gij;
      col_sum[static_cast<size_t>(j)] += gij;
    }
  }
  std::vector<double> out(g.size());
  for (int64_t i = 0; i < spec.rows; ++i) {
    const double a_row =
        1.0 / (1.0 + spec.r_driver * row_sum[static_cast<size_t>(i)]);
    for (int64_t j = 0; j < spec.cols; ++j) {
      const size_t idx = static_cast<size_t>(i * spec.cols + j);
      const double a_col =
          1.0 / (1.0 + spec.r_sense * col_sum[static_cast<size_t>(j)]);
      out[idx] = a_row * a_col /
                 (1.0 / g[idx] + series_path_resistance(i, j, spec));
    }
  }
  return out;
}

}  // namespace rhw::xbar
