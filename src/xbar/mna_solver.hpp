// Exact modified-nodal-analysis solver for the resistive crossbar grid.
//
// Models every node of the crossbar: per-cross-point row-wire and column-wire
// nodes, row drivers (V_i through R_driver), inter-segment wire resistances,
// the synaptic device between the wire layers at each cross-point, and column
// sense resistances to virtual ground. The network is linear, so one LU
// factorization serves any number of input vectors, and the crossbar's exact
// behaviour is the effective conductance matrix A with I_j = sum_i A_ij V_i.
//
// Complexity is O((2*rows*cols)^3) for the factorization — used for
// validation, small-array studies and the micro benchmarks; the DNN mapping
// pipeline uses the fast model in nonideal.hpp, whose error against this
// solver is bounded in tests.
#pragma once

#include <vector>

#include "xbar/conductance.hpp"

namespace rhw::xbar {

class MnaSolver {
 public:
  // g: device conductances, row-major [rows x cols].
  MnaSolver(const std::vector<double>& g, const CrossbarSpec& spec);

  // Column output currents (size cols) for the given row voltages (size rows).
  std::vector<double> solve(const std::vector<double>& v_in) const;

  // Effective conductance matrix [rows x cols]: I_j = sum_i A_ij V_i.
  std::vector<double> effective_conductance() const;

  int64_t rows() const { return spec_.rows; }
  int64_t cols() const { return spec_.cols; }

 private:
  CrossbarSpec spec_;
  int64_t n_ = 0;                  // number of unknown nodes (2 * rows * cols)
  std::vector<double> lu_;         // packed LU factors, n x n
  std::vector<int> pivot_;         // row permutation
  double g_driver_ = 0.0;

  std::vector<double> solve_nodes(const std::vector<double>& rhs) const;
};

}  // namespace rhw::xbar
