#include "xbar/mna_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rhw::xbar {

namespace {
// Resistances are clamped so ideal (zero-parasitic) configurations stay
// numerically well posed.
double conductance_of(double resistance) {
  return 1.0 / std::max(resistance, 1e-9);
}
}  // namespace

MnaSolver::MnaSolver(const std::vector<double>& g, const CrossbarSpec& spec)
    : spec_(spec) {
  const int64_t rows = spec.rows, cols = spec.cols;
  if (static_cast<int64_t>(g.size()) != rows * cols) {
    throw std::invalid_argument("MnaSolver: conductance size mismatch");
  }
  n_ = 2 * rows * cols;
  lu_.assign(static_cast<size_t>(n_ * n_), 0.0);
  pivot_.resize(static_cast<size_t>(n_));
  g_driver_ = conductance_of(spec.r_driver);
  const double g_row = conductance_of(spec.r_wire_row);
  const double g_col = conductance_of(spec.r_wire_col);
  const double g_sense = conductance_of(spec.r_sense);

  auto row_node = [cols](int64_t i, int64_t j) { return i * cols + j; };
  auto col_node = [rows, cols](int64_t i, int64_t j) {
    return rows * cols + i * cols + j;
  };
  auto add = [this](int64_t a, int64_t b, double cond) {
    lu_[static_cast<size_t>(a * n_ + a)] += cond;
    lu_[static_cast<size_t>(b * n_ + b)] += cond;
    lu_[static_cast<size_t>(a * n_ + b)] -= cond;
    lu_[static_cast<size_t>(b * n_ + a)] -= cond;
  };
  auto add_to_rail = [this](int64_t a, double cond) {
    lu_[static_cast<size_t>(a * n_ + a)] += cond;
  };

  for (int64_t i = 0; i < rows; ++i) {
    add_to_rail(row_node(i, 0), g_driver_);  // driver (RHS handled in solve)
    for (int64_t j = 0; j + 1 < cols; ++j) {
      add(row_node(i, j), row_node(i, j + 1), g_row);
    }
    for (int64_t j = 0; j < cols; ++j) {
      add(row_node(i, j), col_node(i, j),
          g[static_cast<size_t>(i * cols + j)]);
    }
  }
  for (int64_t j = 0; j < cols; ++j) {
    for (int64_t i = 0; i + 1 < rows; ++i) {
      add(col_node(i, j), col_node(i + 1, j), g_col);
    }
    add_to_rail(col_node(rows - 1, j), g_sense);  // sense to virtual ground
  }

  // In-place LU with partial pivoting.
  for (int64_t k = 0; k < n_; ++k) {
    int64_t piv = k;
    double best = std::fabs(lu_[static_cast<size_t>(k * n_ + k)]);
    for (int64_t r = k + 1; r < n_; ++r) {
      const double v = std::fabs(lu_[static_cast<size_t>(r * n_ + k)]);
      if (v > best) {
        best = v;
        piv = r;
      }
    }
    if (best == 0.0) throw std::runtime_error("MnaSolver: singular matrix");
    pivot_[static_cast<size_t>(k)] = static_cast<int>(piv);
    if (piv != k) {
      for (int64_t c = 0; c < n_; ++c) {
        std::swap(lu_[static_cast<size_t>(k * n_ + c)],
                  lu_[static_cast<size_t>(piv * n_ + c)]);
      }
    }
    const double inv = 1.0 / lu_[static_cast<size_t>(k * n_ + k)];
    for (int64_t r = k + 1; r < n_; ++r) {
      const double factor = lu_[static_cast<size_t>(r * n_ + k)] * inv;
      lu_[static_cast<size_t>(r * n_ + k)] = factor;
      if (factor == 0.0) continue;
      const double* src = lu_.data() + k * n_;
      double* dst = lu_.data() + r * n_;
      for (int64_t c = k + 1; c < n_; ++c) dst[c] -= factor * src[c];
    }
  }
}

std::vector<double> MnaSolver::solve_nodes(
    const std::vector<double>& rhs) const {
  std::vector<double> x = rhs;
  for (int64_t k = 0; k < n_; ++k) {
    const int64_t piv = pivot_[static_cast<size_t>(k)];
    if (piv != k) std::swap(x[static_cast<size_t>(k)], x[static_cast<size_t>(piv)]);
    const double xk = x[static_cast<size_t>(k)];
    if (xk == 0.0) continue;
    for (int64_t r = k + 1; r < n_; ++r) {
      x[static_cast<size_t>(r)] -= lu_[static_cast<size_t>(r * n_ + k)] * xk;
    }
  }
  for (int64_t k = n_ - 1; k >= 0; --k) {
    double acc = x[static_cast<size_t>(k)];
    const double* row = lu_.data() + k * n_;
    for (int64_t c = k + 1; c < n_; ++c) acc -= row[c] * x[static_cast<size_t>(c)];
    x[static_cast<size_t>(k)] = acc / row[k];
  }
  return x;
}

std::vector<double> MnaSolver::solve(const std::vector<double>& v_in) const {
  const int64_t rows = spec_.rows, cols = spec_.cols;
  if (static_cast<int64_t>(v_in.size()) != rows) {
    throw std::invalid_argument("MnaSolver::solve: bad input size");
  }
  std::vector<double> rhs(static_cast<size_t>(n_), 0.0);
  for (int64_t i = 0; i < rows; ++i) {
    rhs[static_cast<size_t>(i * cols)] = g_driver_ * v_in[static_cast<size_t>(i)];
  }
  const auto nodes = solve_nodes(rhs);
  const double g_sense = 1.0 / std::max(spec_.r_sense, 1e-9);
  std::vector<double> currents(static_cast<size_t>(cols));
  const int64_t col_base = rows * cols + (rows - 1) * cols;
  for (int64_t j = 0; j < cols; ++j) {
    currents[static_cast<size_t>(j)] =
        nodes[static_cast<size_t>(col_base + j)] * g_sense;
  }
  return currents;
}

std::vector<double> MnaSolver::effective_conductance() const {
  const int64_t rows = spec_.rows, cols = spec_.cols;
  std::vector<double> eff(static_cast<size_t>(rows * cols));
  std::vector<double> v(static_cast<size_t>(rows), 0.0);
  for (int64_t i = 0; i < rows; ++i) {
    v[static_cast<size_t>(i)] = 1.0;
    const auto currents = solve(v);
    for (int64_t j = 0; j < cols; ++j) {
      eff[static_cast<size_t>(i * cols + j)] = currents[static_cast<size_t>(j)];
    }
    v[static_cast<size_t>(i)] = 0.0;
  }
  return eff;
}

}  // namespace rhw::xbar
