#include "xbar/conductance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rhw::xbar {

ProgrammedTile program_tile(const float* w, int64_t out_m, int64_t in_n,
                            int64_t ldw, const CrossbarSpec& spec,
                            rhw::RandomEngine* variation_rng) {
  if (out_m > spec.cols || in_n > spec.rows) {
    throw std::invalid_argument("program_tile: tile exceeds crossbar size");
  }
  ProgrammedTile tile;
  tile.in_n = in_n;
  tile.out_m = out_m;
  const size_t total = static_cast<size_t>(spec.rows * spec.cols);
  tile.g_pos.assign(total, spec.g_min());
  tile.g_neg.assign(total, spec.g_min());

  float wmax = 0.f;
  for (int64_t o = 0; o < out_m; ++o) {
    for (int64_t i = 0; i < in_n; ++i) {
      wmax = std::max(wmax, std::fabs(w[o * ldw + i]));
    }
  }
  const double g_range = spec.g_max() - spec.g_min();
  tile.weight_per_siemens =
      wmax > 0.f ? static_cast<double>(wmax) / g_range : 1.0 / g_range;

  for (int64_t o = 0; o < out_m; ++o) {
    for (int64_t i = 0; i < in_n; ++i) {
      const double v = w[o * ldw + i];
      // crossbar index: row = input i, col = output o
      const size_t idx = static_cast<size_t>(i * spec.cols + o);
      const double mag =
          wmax > 0.f ? std::fabs(v) / wmax * g_range : 0.0;
      if (v >= 0) {
        tile.g_pos[idx] = spec.g_min() + mag;
      } else {
        tile.g_neg[idx] = spec.g_min() + mag;
      }
    }
  }

  if (variation_rng != nullptr && spec.sigma_over_mu > 0) {
    // Gaussian process variation on every device, clamped to stay physical.
    auto vary = [&](std::vector<double>& g) {
      for (double& gij : g) {
        const double factor =
            1.0 + spec.sigma_over_mu * variation_rng->gaussian();
        gij = std::clamp(gij * factor, 0.1 * spec.g_min(), 2.0 * spec.g_max());
      }
    };
    vary(tile.g_pos);
    vary(tile.g_neg);
  }
  return tile;
}

std::vector<float> tile_weights(const ProgrammedTile& tile,
                                const std::vector<double>& g_pos,
                                const std::vector<double>& g_neg,
                                const CrossbarSpec& spec) {
  std::vector<float> w(static_cast<size_t>(tile.out_m * tile.in_n));
  for (int64_t o = 0; o < tile.out_m; ++o) {
    for (int64_t i = 0; i < tile.in_n; ++i) {
      const size_t idx = static_cast<size_t>(i * spec.cols + o);
      w[static_cast<size_t>(o * tile.in_n + i)] = static_cast<float>(
          (g_pos[idx] - g_neg[idx]) * tile.weight_per_siemens);
    }
  }
  return w;
}

}  // namespace rhw::xbar
