#include "xbar/crossbar_array.hpp"

#include <stdexcept>

#include "xbar/mna_solver.hpp"
#include "xbar/nonideal.hpp"

namespace rhw::xbar {

CrossbarArray::CrossbarArray(const float* w, int64_t out_m, int64_t in_n,
                             int64_t ldw, const CrossbarSpec& spec,
                             CircuitModel model,
                             rhw::RandomEngine* variation_rng)
    : spec_(spec),
      tile_(program_tile(w, out_m, in_n, ldw, spec, variation_rng)) {
  switch (model) {
    case CircuitModel::kIdeal:
      g_pos_eff_ = tile_.g_pos;
      g_neg_eff_ = tile_.g_neg;
      break;
    case CircuitModel::kFastApprox:
      g_pos_eff_ = nonideal_conductances(tile_.g_pos, spec_);
      g_neg_eff_ = nonideal_conductances(tile_.g_neg, spec_);
      break;
    case CircuitModel::kExactMna: {
      // The exact solver already includes driver/sense/wire paths, and the
      // network is linear, so the effective conductance matrix fully
      // characterizes the tile.
      MnaSolver pos(tile_.g_pos, spec_);
      MnaSolver neg(tile_.g_neg, spec_);
      g_pos_eff_ = pos.effective_conductance();
      g_neg_eff_ = neg.effective_conductance();
      break;
    }
  }
  w_eff_ = tile_weights(tile_, g_pos_eff_, g_neg_eff_, spec_);
}

std::vector<float> CrossbarArray::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != tile_.in_n) {
    throw std::invalid_argument("CrossbarArray::matvec: bad input size");
  }
  std::vector<float> y(static_cast<size_t>(tile_.out_m), 0.f);
  for (int64_t o = 0; o < tile_.out_m; ++o) {
    double acc = 0.0;
    const float* wrow = w_eff_.data() + o * tile_.in_n;
    for (int64_t i = 0; i < tile_.in_n; ++i) {
      acc += static_cast<double>(wrow[i]) * x[static_cast<size_t>(i)];
    }
    y[static_cast<size_t>(o)] = static_cast<float>(acc);
  }
  return y;
}

}  // namespace rhw::xbar
