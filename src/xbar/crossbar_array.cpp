#include "xbar/crossbar_array.hpp"

#include <stdexcept>

#include "core/thread_pool.hpp"
#include "xbar/mna_solver.hpp"
#include "xbar/nonideal.hpp"

namespace rhw::xbar {

namespace {

// Samples processed together per kernel pass. The serial matvec is bound by
// the latency of its single double-add dependency chain; kBatchLanes
// independent chains keep the FP units busy instead, without reordering any
// per-sample sum.
constexpr int64_t kBatchLanes = 8;

// Single-sample scalar kernel (remainder lanes): arithmetic identical to
// matvec — ascending-i double accumulation of exact float->double products.
void mv_single(const float* w, int64_t out_m, int64_t in_n, const float* x,
               float* y, bool accumulate) {
  for (int64_t o = 0; o < out_m; ++o) {
    const float* wrow = w + o * in_n;
    double acc = 0.0;
    for (int64_t i = 0; i < in_n; ++i) {
      acc += static_cast<double>(wrow[i]) * x[i];
    }
    const float v = static_cast<float>(acc);
    y[o] = accumulate ? y[o] + v : v;
  }
}

// 8-sample block kernel. xpack holds the block transposed and pre-converted
// to double, lane-interleaved (xpack[i * 8 + l] = sample l's input i), so
// every step is a contiguous packed multiply-add. Bit-exactness with matvec
// is preserved: the float->double conversions are exact, each product of two
// converted floats is exact in double (24-bit mantissas into 53), and each
// lane keeps its own accumulator summed in ascending-i order — vector width
// and FMA contraction cannot change any per-sample result.
#if defined(__GNUC__) || defined(__clang__)
typedef double v2d __attribute__((vector_size(16)));
// Load type with element alignment only: vector<double> data is not
// guaranteed 16-byte aligned on every target, so loads must not assume it
// (the compiler emits unaligned moves, same speed on modern x86).
typedef double v2d_u __attribute__((vector_size(16), aligned(8)));

void mv_block8(const float* w, int64_t out_m, int64_t in_n,
               const double* xpack, float* y, int64_t ldy, bool accumulate) {
  for (int64_t o = 0; o < out_m; ++o) {
    const float* wrow = w + o * in_n;
    v2d acc0 = {0, 0}, acc1 = {0, 0}, acc2 = {0, 0}, acc3 = {0, 0};
    for (int64_t i = 0; i < in_n; ++i) {
      const double wv = static_cast<double>(wrow[i]);
      const v2d wvv = {wv, wv};
      const double* xi = xpack + i * kBatchLanes;
      acc0 += wvv * *reinterpret_cast<const v2d_u*>(xi);
      acc1 += wvv * *reinterpret_cast<const v2d_u*>(xi + 2);
      acc2 += wvv * *reinterpret_cast<const v2d_u*>(xi + 4);
      acc3 += wvv * *reinterpret_cast<const v2d_u*>(xi + 6);
    }
    const double acc[kBatchLanes] = {acc0[0], acc0[1], acc1[0], acc1[1],
                                     acc2[0], acc2[1], acc3[0], acc3[1]};
    for (int64_t l = 0; l < kBatchLanes; ++l) {
      float* yo = y + l * ldy + o;
      const float v = static_cast<float>(acc[l]);
      *yo = accumulate ? *yo + v : v;
    }
  }
}
#else
void mv_block8(const float* w, int64_t out_m, int64_t in_n,
               const double* xpack, float* y, int64_t ldy, bool accumulate) {
  for (int64_t o = 0; o < out_m; ++o) {
    const float* wrow = w + o * in_n;
    double acc[kBatchLanes] = {};
    for (int64_t i = 0; i < in_n; ++i) {
      const double wv = static_cast<double>(wrow[i]);
      const double* xi = xpack + i * kBatchLanes;
      for (int64_t l = 0; l < kBatchLanes; ++l) acc[l] += wv * xi[l];
    }
    for (int64_t l = 0; l < kBatchLanes; ++l) {
      float* yo = y + l * ldy + o;
      const float v = static_cast<float>(acc[l]);
      *yo = accumulate ? *yo + v : v;
    }
  }
}
#endif

}  // namespace

CrossbarArray::CrossbarArray(const float* w, int64_t out_m, int64_t in_n,
                             int64_t ldw, const CrossbarSpec& spec,
                             CircuitModel model,
                             rhw::RandomEngine* variation_rng)
    : spec_(spec),
      tile_(program_tile(w, out_m, in_n, ldw, spec, variation_rng)) {
  switch (model) {
    case CircuitModel::kIdeal:
      g_pos_eff_ = tile_.g_pos;
      g_neg_eff_ = tile_.g_neg;
      break;
    case CircuitModel::kFastApprox:
      g_pos_eff_ = nonideal_conductances(tile_.g_pos, spec_);
      g_neg_eff_ = nonideal_conductances(tile_.g_neg, spec_);
      break;
    case CircuitModel::kExactMna: {
      // The exact solver already includes driver/sense/wire paths, and the
      // network is linear, so the effective conductance matrix fully
      // characterizes the tile.
      MnaSolver pos(tile_.g_pos, spec_);
      MnaSolver neg(tile_.g_neg, spec_);
      g_pos_eff_ = pos.effective_conductance();
      g_neg_eff_ = neg.effective_conductance();
      break;
    }
  }
  w_eff_ = tile_weights(tile_, g_pos_eff_, g_neg_eff_, spec_);
  // The conductance matrices are construction intermediates: every read path
  // (matvec/matmul/effective_weights) works off w_eff_. Releasing them keeps
  // retained tile grids at ~1x the layer's weight memory instead of ~9x
  // (four double matrices vs one float one).
  std::vector<double>().swap(tile_.g_pos);
  std::vector<double>().swap(tile_.g_neg);
  std::vector<double>().swap(g_pos_eff_);
  std::vector<double>().swap(g_neg_eff_);
}

std::vector<float> CrossbarArray::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != tile_.in_n) {
    throw std::invalid_argument("CrossbarArray::matvec: bad input size");
  }
  std::vector<float> y(static_cast<size_t>(tile_.out_m), 0.f);
  for (int64_t o = 0; o < tile_.out_m; ++o) {
    double acc = 0.0;
    const float* wrow = w_eff_.data() + o * tile_.in_n;
    for (int64_t i = 0; i < tile_.in_n; ++i) {
      acc += static_cast<double>(wrow[i]) * x[static_cast<size_t>(i)];
    }
    y[static_cast<size_t>(o)] = static_cast<float>(acc);
  }
  return y;
}

void CrossbarArray::matmul_strided(const float* x, int64_t ldx, int64_t batch,
                                   float* y, int64_t ldy,
                                   bool accumulate) const {
  std::vector<double> scratch;
  matmul_strided(x, ldx, batch, y, ldy, accumulate, scratch);
}

void CrossbarArray::matmul_strided(const float* x, int64_t ldx, int64_t batch,
                                   float* y, int64_t ldy, bool accumulate,
                                   std::vector<double>& scratch) const {
  const float* w = w_eff_.data();
  const int64_t in_n = tile_.in_n;
  if (static_cast<int64_t>(scratch.size()) < in_n * kBatchLanes) {
    scratch.resize(static_cast<size_t>(in_n * kBatchLanes));
  }
  std::vector<double>& xpack = scratch;
  int64_t b = 0;
  for (; b + kBatchLanes <= batch; b += kBatchLanes) {
    for (int64_t l = 0; l < kBatchLanes; ++l) {
      const float* xrow = x + (b + l) * ldx;
      for (int64_t i = 0; i < in_n; ++i) {
        xpack[static_cast<size_t>(i * kBatchLanes + l)] =
            static_cast<double>(xrow[i]);
      }
    }
    mv_block8(w, tile_.out_m, in_n, xpack.data(), y + b * ldy, ldy,
              accumulate);
  }
  for (; b < batch; ++b) {
    mv_single(w, tile_.out_m, in_n, x + b * ldx, y + b * ldy, accumulate);
  }
}

void CrossbarArray::matmul(const float* x, int64_t batch, float* y) const {
  if (batch <= 0) return;
  const int64_t in_n = tile_.in_n;
  const int64_t out_m = tile_.out_m;
  rhw::parallel_for(batch, [&](int64_t begin, int64_t end) {
    matmul_strided(x + begin * in_n, in_n, end - begin, y + begin * out_m,
                   out_m, /*accumulate=*/false);
  });
}

void CrossbarArray::scale_outputs(const float* gains) {
  for (int64_t o = 0; o < tile_.out_m; ++o) {
    float* row = w_eff_.data() + o * tile_.in_n;
    for (int64_t i = 0; i < tile_.in_n; ++i) row[i] *= gains[o];
  }
}

}  // namespace rhw::xbar
