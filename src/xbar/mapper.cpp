#include "xbar/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "quant/quantizer.hpp"

namespace rhw::xbar {

namespace {

// Installs the peripheral model (read noise + ADC quantization) as an
// ungated hook on the layer output. layer_distortion is the layer's mean
// (post-calibration) relative weight error; layer_attenuation is the raw
// IR-drop loss the gain calibration removed. Both scale the stochastic
// read noise (see XbarMapConfig).
void install_peripheral_hook(nn::Module& layer, const XbarMapConfig& cfg,
                             double layer_distortion, double layer_attenuation,
                             uint64_t layer_seed) {
  const double sigma_d = cfg.read_noise_sigma +
                         cfg.read_noise_scale * layer_distortion +
                         cfg.ir_fluctuation * layer_attenuation;
  if (cfg.adc_bits > 0 || sigma_d > 0.0) {
    auto rng = std::make_shared<rhw::RandomEngine>(layer_seed);
    const int adc_bits = cfg.adc_bits;
    const auto sigma = static_cast<float>(sigma_d);
    layer.set_post_hook(
        [rng, adc_bits, sigma](nn::Tensor& t) {
          if (sigma > 0.f) {
            for (float& v : t.span()) v *= 1.f + sigma * rng->gaussian();
          }
          if (adc_bits > 0) quant::fake_quantize_symmetric_(t, adc_bits);
        },
        /*gated=*/false,
        // Read noise is stochastic: expose the stream to
        // nn::reseed_noise_streams so evaluation passes are reproducible.
        [rng](uint64_t seed) { rng->reseed(seed); });
  }
  // Gradients computed *through* the hardware (HH attacks, on-chip training)
  // read the same noisy analog arrays; additive RMS-relative noise scrambles
  // the sign of small gradient components — the paper's gradient
  // obfuscation (see XbarMapConfig::grad_noise_scale).
  if (cfg.grad_noise_scale > 0.0) {
    auto grad_rng = std::make_shared<rhw::RandomEngine>(layer_seed ^ 0x6AD5);
    const auto gscale = static_cast<float>(cfg.grad_noise_scale);
    layer.set_backward_hook(
        [grad_rng, gscale](nn::Tensor& g) {
          const float rms =
              g.numel() > 0
                  ? g.l2_norm() / std::sqrt(static_cast<float>(g.numel()))
                  : 0.f;
          const float sigma_add = gscale * rms;
          if (sigma_add <= 0.f) return;
          for (float& v : g.span()) v += sigma_add * grad_rng->gaussian();
        },
        /*gated=*/false,
        [grad_rng](uint64_t seed) { grad_rng->reseed(seed); });
  }
}

}  // namespace

XbarMapResult map_onto_crossbars_detailed(nn::Module& net,
                                          const XbarMapConfig& cfg,
                                          bool retain_tiles) {
  XbarMapResult result;
  XbarMapReport& report = result.report;
  rhw::RandomEngine master(cfg.seed);
  double err_acc = 0.0;
  int64_t err_count = 0;
  double atten_acc = 0.0;

  for (nn::Module* layer : nn::collect_weight_layers(net)) {
    ++report.num_layers;
    rhw::RandomEngine layer_rng = master.fork(report.num_layers);
    XbarMappedLayer mapped;
    mapped.layer = layer;
    mapped.label =
        layer->type_name() + "#" + std::to_string(report.num_layers - 1);
    double layer_err_acc = 0.0;
    int64_t layer_err_count = 0;
    double layer_atten_acc = 0.0;
    int64_t layer_atten_count = 0;
    for (nn::Param* p : layer->parameters()) {
      if (p->name != "weight" || p->value.rank() != 2) continue;
      Tensor& w = p->value;
      const int64_t out = w.dim(0), in = w.dim(1);
      const float layer_scale = std::max(w.abs_max(), 1e-12f);
      Tensor original = w;
      auto tiles = std::make_shared<TiledMatrix>(
          original.data(), out, in, in, cfg.spec, cfg.model,
          cfg.process_variation ? &layer_rng : nullptr);
      report.num_tiles += tiles->num_tiles();
      const std::vector<float> w_eff = tiles->effective_weights();
      double abs_orig = 0.0, abs_eff = 0.0;
      for (int64_t o = 0; o < out; ++o) {
        for (int64_t i = 0; i < in; ++i) {
          const float eff = w_eff[static_cast<size_t>(o * in + i)];
          w.at(o, i) = eff;
          abs_orig += std::fabs(original.at(o, i));
          abs_eff += std::fabs(eff);
        }
      }
      if (abs_orig > 0.0) {
        layer_atten_acc += std::max(0.0, 1.0 - abs_eff / abs_orig);
        ++layer_atten_count;
      }
      if (cfg.gain_calibration) {
        // Per-output-channel trim: each crossbar column has its own sense
        // amplifier / ADC reference, so the per-column gain is calibrated
        // individually (standard practice). Residual distortion is the
        // within-column structure calibration cannot reach. The same trim
        // applies to the tile grid, keeping retained tiles consistent with
        // the written-back weights.
        std::vector<float> gains(static_cast<size_t>(out), 1.f);
        for (int64_t o = 0; o < out; ++o) {
          double row_orig = 0.0, row_eff = 0.0;
          for (int64_t i = 0; i < in; ++i) {
            row_orig += std::fabs(original.at(o, i));
            row_eff += std::fabs(w.at(o, i));
          }
          if (row_eff > 0.0) {
            const auto gain = static_cast<float>(row_orig / row_eff);
            gains[static_cast<size_t>(o)] = gain;
            for (int64_t i = 0; i < in; ++i) w.at(o, i) *= gain;
          }
        }
        tiles->scale_output_gains(gains);
      }
      if (retain_tiles) mapped.tiles = std::move(tiles);
      for (int64_t o = 0; o < out; ++o) {
        for (int64_t i = 0; i < in; ++i) {
          const double rel = std::fabs(w.at(o, i) - original.at(o, i)) /
                             static_cast<double>(layer_scale);
          err_acc += rel;
          ++err_count;
          layer_err_acc += rel;
          ++layer_err_count;
          report.max_rel_weight_error =
              std::max(report.max_rel_weight_error, rel);
        }
      }
    }
    const double layer_distortion =
        layer_err_count > 0 ? layer_err_acc / static_cast<double>(layer_err_count)
                            : 0.0;
    const double layer_attenuation =
        layer_atten_count > 0
            ? layer_atten_acc / static_cast<double>(layer_atten_count)
            : 0.0;
    atten_acc += layer_attenuation;
    install_peripheral_hook(*layer, cfg, layer_distortion, layer_attenuation,
                            cfg.seed ^ (0xFEED * report.num_layers));
    result.layers.push_back(std::move(mapped));
  }
  report.mean_rel_weight_error =
      err_count > 0 ? err_acc / static_cast<double>(err_count) : 0.0;
  report.mean_ir_attenuation =
      report.num_layers > 0
          ? atten_acc / static_cast<double>(report.num_layers)
          : 0.0;
  return result;
}

XbarMapReport map_onto_crossbars(nn::Module& net, const XbarMapConfig& cfg) {
  return map_onto_crossbars_detailed(net, cfg, /*retain_tiles=*/false).report;
}

}  // namespace rhw::xbar
