#include "xbar/energy_model.hpp"

#include <algorithm>
#include <cmath>

namespace rhw::xbar {

double XbarEnergyModel::device_read_energy_fj(const CrossbarSpec& spec) const {
  // E = G * V^2 * T  (worst case G = G_MAX). Units: S * V^2 * ns = nJ*1e-9...
  // G_MAX [S] * Vread^2 [V^2] * t [ns -> s: 1e-9] gives Joules; convert to fJ.
  const double joules = spec.g_max() * params_.v_read * params_.v_read *
                        (params_.t_read_ns * 1e-9);
  return joules * 1e15;
}

double XbarEnergyModel::tile_mvm_energy_fj(const CrossbarSpec& spec,
                                           int adc_bits) const {
  const double devices = static_cast<double>(spec.rows * spec.cols) *
                         device_read_energy_fj(spec) *
                         2.0;  // differential pair: two arrays per tile
  const double dacs = static_cast<double>(spec.rows) * params_.dac_energy_fj;
  // ADC energy grows ~4x per bit; adc_base_fj is defined at 6-bit precision.
  const double adcs =
      static_cast<double>(spec.cols) * params_.adc_base_fj *
      std::pow(4.0, static_cast<double>(adc_bits) - 6.0);
  return devices + dacs + adcs;
}

double XbarEnergyModel::tile_area_um2(const CrossbarSpec& spec,
                                      int column_sharing) const {
  const double cells = static_cast<double>(spec.rows * spec.cols) * 2.0 *
                       params_.cell_area_um2;  // differential pair
  const double adcs = static_cast<double>(spec.cols) /
                      static_cast<double>(std::max(1, column_sharing)) *
                      params_.adc_area_um2;
  return cells + adcs;
}

double XbarEnergyModel::model_mvm_energy_nj(int64_t num_tiles,
                                            const CrossbarSpec& spec,
                                            int adc_bits) const {
  return static_cast<double>(num_tiles) * tile_mvm_energy_fj(spec, adc_bits) *
         1e-6;  // fJ -> nJ
}

}  // namespace rhw::xbar
