// A full [out x in] weight matrix realized as a grid of crossbar tiles.
//
// This is the tile-level execution engine behind XbarBackend: where the
// mapper historically constructed one CrossbarArray per tile only to read its
// effective weights back, TiledMatrix keeps the programmed tiles alive and
// serves *batched* matrix products directly — batch blocks run across the
// global thread pool and samples within a block interleave their
// accumulation chains (see CrossbarArray::matmul). Per-sample arithmetic is
// bit-identical to looping matvec over the batch.
//
// Tile construction order is input-blocks outer, output-blocks inner — the
// mapper's historical order — so a shared variation RNG consumes draws in
// exactly the stream older code produced.
#pragma once

#include <cstdint>
#include <vector>

#include "xbar/crossbar_array.hpp"

namespace rhw::xbar {

class TiledMatrix {
 public:
  TiledMatrix() = default;

  // Programs w [out x in] (row-major, leading dimension ldw) onto
  // ceil(in / spec.rows) x ceil(out / spec.cols) tiles.
  TiledMatrix(const float* w, int64_t out, int64_t in, int64_t ldw,
              const CrossbarSpec& spec, CircuitModel model,
              rhw::RandomEngine* variation_rng);

  int64_t out_m() const { return out_; }
  int64_t in_n() const { return in_; }
  int64_t num_tiles() const { return static_cast<int64_t>(tiles_.size()); }

  // y = W' x for a whole batch: x [batch x in], y [batch x out], both
  // row-major, y overwritten. Batch blocks are distributed over the global
  // thread pool; within a block each tile's partial products accumulate into
  // y in fixed tile order, so results are bit-identical to matvec for every
  // batch size and thread count.
  void matmul(const float* x, int64_t batch, float* y) const;

  // Serial single-vector reference: one matmul lane.
  std::vector<float> matvec(const std::vector<float>& x) const;

  // The effective (non-ideal) weights the grid realizes, [out x in]
  // row-major — what the mapper writes back into the layer.
  std::vector<float> effective_weights() const;

  // Per-output sense-amplifier / ADC reference trim: scales output o of
  // every covering tile by gains[o] (size out). The mapper applies its gain
  // calibration here too, so retained tile grids stay element-for-element
  // consistent with the calibrated weights written back into the layer.
  void scale_output_gains(const std::vector<float>& gains);

 private:
  struct PlacedTile {
    int64_t i0 = 0;  // first input column covered by this tile
    int64_t o0 = 0;  // first output row covered by this tile
    CrossbarArray array;
  };

  int64_t out_ = 0;
  int64_t in_ = 0;
  std::vector<PlacedTile> tiles_;
};

}  // namespace rhw::xbar
