// Fast (input-independent) non-ideal conductance model.
//
// Two first-order effects compose:
//
// 1. Series path resistance per cross-point: current through (i, j) traverses
//    j+1 row-wire segments and (rows - i) column-wire segments:
//      R_path(i,j) = (j+1) R_wire_row + (rows - i) R_wire_col
//
// 2. Current crowding through the shared driver and sense resistances: ALL
//    devices on row i pull current through the same R_driver, so the row's
//    input node sags by a factor that depends on the row's total conductance
//    (and likewise for each column's R_sense):
//      a_row(i) = 1 / (1 + R_driver * sum_j G_ij)
//      a_col(j) = 1 / (1 + R_sense  * sum_i G_ij)
//
// Combining:  G'_ij = a_row(i) * a_col(j) / (1/G_ij + R_path(i,j))
//
// This captures the paper's three levers — degradation grows with crossbar
// size (longer wires AND more devices sharing the driver), with conductance
// (smaller R_MIN), and is position-dependent — and tracks the exact MNA grid
// solver (mna_solver.hpp) to within a tolerance bounded in tests.
#pragma once

#include <vector>

#include "xbar/conductance.hpp"

namespace rhw::xbar {

// Wire-only series path resistance seen by cross-point (row i, col j).
double series_path_resistance(int64_t i, int64_t j, const CrossbarSpec& spec);

// Applies the model to a full [rows x cols] conductance matrix.
std::vector<double> nonideal_conductances(const std::vector<double>& g,
                                          const CrossbarSpec& spec);

}  // namespace rhw::xbar
