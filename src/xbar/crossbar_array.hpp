// One programmed crossbar tile with a selectable circuit model.
#pragma once

#include <vector>

#include "xbar/conductance.hpp"

namespace rhw::xbar {

enum class CircuitModel {
  kIdeal,       // no parasitics: G' = G (variation still applies if enabled)
  kFastApprox,  // series-path IR-drop model (nonideal.hpp) — pipeline default
  kExactMna,    // full grid solve (mna_solver.hpp) — validation/small arrays
};

class CrossbarArray {
 public:
  // Programs w [out_m x in_n] (leading dimension ldw) onto a tile of `spec`,
  // applying process variation when variation_rng != nullptr, then computes
  // the non-ideal conductances under `model`.
  CrossbarArray(const float* w, int64_t out_m, int64_t in_n, int64_t ldw,
                const CrossbarSpec& spec, CircuitModel model,
                rhw::RandomEngine* variation_rng);

  // Differential column currents for row voltages x (size in_n), scaled back
  // to weight units: y_o = sum_i W'_oi * x_i  (size out_m).
  std::vector<float> matvec(const std::vector<float>& x) const;

  // Batched read: x is [batch x in_n] row-major, y is [batch x out_m]
  // row-major (overwritten). Batch blocks run across the global thread pool,
  // and within a block samples are interleaved so their accumulation chains
  // overlap. Each sample's sum still runs over i in ascending order with one
  // double accumulator, so the result is bit-identical to per-sample matvec
  // for every batch size.
  void matmul(const float* x, int64_t batch, float* y) const;

  // Strided serial kernel behind matmul, exposed for tiled execution: rows of
  // x advance by ldx, rows of y by ldy; accumulate=true adds into y (used
  // when a logical matrix spans several tiles along the input dimension).
  // The scratch overload reuses the caller's staging buffer across calls
  // (resized as needed) instead of allocating per call.
  void matmul_strided(const float* x, int64_t ldx, int64_t batch, float* y,
                      int64_t ldy, bool accumulate) const;
  void matmul_strided(const float* x, int64_t ldx, int64_t batch, float* y,
                      int64_t ldy, bool accumulate,
                      std::vector<double>& scratch) const;

  // Per-column sense-amplifier / ADC reference trim: scales output o of the
  // realized weights by gains[o]. The mapper uses this to keep retained
  // tiles consistent with its gain-calibrated write-back weights.
  void scale_outputs(const float* gains);

  // The weights the non-ideal tile effectively realizes, [out_m x in_n].
  const std::vector<float>& effective_weights() const { return w_eff_; }

  const CrossbarSpec& spec() const { return spec_; }
  int64_t out_m() const { return tile_.out_m; }
  int64_t in_n() const { return tile_.in_n; }

 private:
  CrossbarSpec spec_;
  ProgrammedTile tile_;
  std::vector<double> g_pos_eff_;
  std::vector<double> g_neg_eff_;
  std::vector<float> w_eff_;
};

}  // namespace rhw::xbar
