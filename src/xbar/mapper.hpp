// Maps a trained DNN onto memristive crossbar tiles (RxNN-style).
//
// Every Conv2d/Linear weight matrix [out x in] is tiled into spec.rows x
// spec.cols crossbars; each tile is programmed as a differential conductance
// pair with Gaussian process variation, distorted by the selected circuit
// model, and the resulting *effective* weights are written back into the
// layer. The mapped network is therefore the hardware model: evaluating it is
// Attack-SH's target, and computing gradients through it is Attack-HH.
//
// Peripherals: column outputs pass through an ADC (fake-quantized to
// adc_bits) after picking up multiplicative read noise. Both are installed as
// ungated post-forward hooks — they are part of the hardware forward path, so
// (unlike SRAM bit-error noise) they remain active while HH attack gradients
// are computed. The backward pass treats them as identity (straight-through),
// which is precisely the gradient-obfuscation mechanism the paper credits for
// HH attacks being weaker than SH on complex datasets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.hpp"
#include "xbar/crossbar_array.hpp"
#include "xbar/tiled_matrix.hpp"

namespace rhw::xbar {

struct XbarMapConfig {
  CrossbarSpec spec;
  CircuitModel model = CircuitModel::kFastApprox;
  bool process_variation = true;
  // Per-layer gain calibration: sense amplifiers / ADC references are trimmed
  // so each layer's mean |weight| matches the programmed target. This removes
  // the uniform attenuation from driver/sense crowding (which any real design
  // calibrates out) and leaves exactly the *distortion* the paper studies.
  bool gain_calibration = true;
  uint64_t seed = 0xB0B0;
  int adc_bits = 5;                // 0 disables ADC quantization
  // Multiplicative per-read output noise:
  //   sigma_layer = read_noise_sigma
  //               + read_noise_scale   * (layer mean relative weight error)
  //               + ir_fluctuation     * (layer mean IR-drop attenuation)
  // The attenuation term models the *input-dependence* of the IR drop: the
  // linearized G' is computed for nominal conditions, but the true drop
  // tracks instantaneous input activity, which shows up as read-to-read
  // fluctuation. It grows with array size and with smaller R_MIN — the
  // mechanism behind the paper's Table III and Fig. 8a robustness trends —
  // and cannot be removed by the static gain calibration.
  double read_noise_sigma = 0.005;
  double read_noise_scale = 0.5;
  double ir_fluctuation = 0.03;
  // Additive noise on gradients computed THROUGH the hardware (HH attacks,
  // on-chip training): per layer, g += grad_noise_scale * rms(g) * z. Analog
  // gradient reads see the same thermal/ADC noise floor as forward reads,
  // but gradients are far smaller signals, so their effective SNR is much
  // worse — small-magnitude gradient components (most of them) lose their
  // sign, which is precisely the gradient obfuscation of the paper's Fig. 1:
  // HH adversaries become weaker than SH transfers. Set 0 to model an
  // attacker with digital off-chip autodiff of the hardware equations.
  double grad_noise_scale = 0.3;
};

struct XbarMapReport {
  int64_t num_layers = 0;
  int64_t num_tiles = 0;
  // |w_eff - w| statistics after gain calibration, normalized per layer by
  // max|w|.
  double mean_rel_weight_error = 0.0;
  double max_rel_weight_error = 0.0;
  // Mean uncalibrated IR-drop attenuation (1 - sum|w_eff| / sum|w|) across
  // layers: the raw crowding/wire loss the calibration compensated.
  double mean_ir_attenuation = 0.0;
};

// One weight layer after mapping. When tiles are retained, `tiles` is the
// live tile grid (TiledMatrix) programmed with this layer's weights — the
// batched tile-level executor XbarBackend serves matmul requests from.
struct XbarMappedLayer {
  nn::Module* layer = nullptr;
  std::string label;  // "<type_name>#<index in execution order>"
  std::shared_ptr<TiledMatrix> tiles;  // null unless retain_tiles
};

struct XbarMapResult {
  XbarMapReport report;
  std::vector<XbarMappedLayer> layers;
};

// Mutates net in place (callers clone the software baseline first): programs
// every rank-2 "weight" parameter onto crossbar tiles, writes the effective
// weights back, and installs the peripheral (ADC/read-noise) and gradient
// hooks. retain_tiles keeps the programmed TiledMatrix per layer for direct
// batched execution.
XbarMapResult map_onto_crossbars_detailed(nn::Module& net,
                                          const XbarMapConfig& cfg,
                                          bool retain_tiles);

// Report-only convenience used by code that needs no tile handles.
XbarMapReport map_onto_crossbars(nn::Module& net, const XbarMapConfig& cfg);

}  // namespace rhw::xbar
