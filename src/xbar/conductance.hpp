// Memristive crossbar specification and weight-to-conductance programming.
//
// Orientation convention (Fig. 3 of the paper): input voltages V_i drive the
// rows, synaptic conductances G_ij sit at the cross-points, and column j's
// output current is I_j = sum_i G_ij * V_i. A weight matrix W [out x in] maps
// with crossbar rows = input features and columns = output features.
//
// Signed weights use the standard differential pair: W = (G+ - G-) / g_scale,
// with the positive part programmed on G+ and the magnitude of the negative
// part on G-, both linearly mapped into [G_MIN, G_MAX].
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"

namespace rhw::xbar {

struct CrossbarSpec {
  int64_t rows = 32;  // inputs per tile
  int64_t cols = 32;  // outputs per tile
  // Paper Sec. III-B: ON/OFF ratio 10 with R_MIN = 20 kOhm, R_MAX = 200 kOhm.
  double r_min = 20e3;
  double r_max = 200e3;
  // Resistive non-idealities (paper values).
  double r_driver = 1e3;
  double r_wire_row = 5.0;
  double r_wire_col = 10.0;
  double r_sense = 1e3;
  // Device-level process variation: Gaussian on conductance, sigma/mu = 10%.
  double sigma_over_mu = 0.10;

  double g_min() const { return 1.0 / r_max; }
  double g_max() const { return 1.0 / r_min; }
  double on_off_ratio() const { return r_max / r_min; }
};

// One programmed tile: conductance pair matrices, stored row-major as
// [rows x cols] (i.e. [in x out]). Unused cross-points padded with G_MIN on
// both matrices (differential contribution zero).
struct ProgrammedTile {
  std::vector<double> g_pos;
  std::vector<double> g_neg;
  int64_t in_n = 0;   // active rows
  int64_t out_m = 0;  // active columns
  // weight = (g_pos - g_neg) * weight_per_siemens
  double weight_per_siemens = 0.0;
};

// Programs a weight tile w [out_m x in_n] (row-major, leading dimension ldw)
// onto a crossbar. variation_rng == nullptr disables process variation.
ProgrammedTile program_tile(const float* w, int64_t out_m, int64_t in_n,
                            int64_t ldw, const CrossbarSpec& spec,
                            rhw::RandomEngine* variation_rng);

// Reads back the weights a tile represents, [out_m x in_n] row-major, from
// arbitrary conductance matrices (e.g. after applying non-idealities).
std::vector<float> tile_weights(const ProgrammedTile& tile,
                                const std::vector<double>& g_pos,
                                const std::vector<double>& g_neg,
                                const CrossbarSpec& spec);

}  // namespace rhw::xbar
