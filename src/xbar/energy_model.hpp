// Energy and area model for memristive crossbar MVM engines.
//
// Per analog MVM on one tile: every row gets a DAC conversion, every device
// dissipates I*V during the read pulse (bounded by G_MAX * Vread^2 * Tread),
// and every column gets one ADC conversion whose energy grows ~4x per
// additional bit (flash/SAR-class scaling). These follow the published
// PUMA/ISAAC-class analyses the paper builds on ([19], [20]); absolute
// numbers are representative, relative scaling across tile sizes and ADC
// precisions is what the ablation bench reports.
#pragma once

#include <cstdint>

#include "xbar/conductance.hpp"

namespace rhw::xbar {

struct XbarEnergyParams {
  double v_read = 0.2;          // read voltage (V)
  double t_read_ns = 10.0;      // integration window
  double dac_energy_fj = 20.0;   // per row conversion (8-bit class)
  // Per column conversion at 6-bit precision; scales 4x per extra bit. SAR
  // ADCs in ISAAC/PUMA-class designs dominate array power, hence the pJ-class
  // default.
  double adc_base_fj = 1000.0;
  double cell_area_um2 = 0.01;  // 1T1R cell footprint, 22 nm class
  double adc_area_um2 = 300.0;  // shared per column group
};

class XbarEnergyModel {
 public:
  explicit XbarEnergyModel(XbarEnergyParams params = {}) : params_(params) {}

  // Worst-case device read energy (device programmed at G_MAX, full swing).
  double device_read_energy_fj(const CrossbarSpec& spec) const;
  // One analog MVM on a full [rows x cols] tile with adc_bits converters.
  double tile_mvm_energy_fj(const CrossbarSpec& spec, int adc_bits) const;
  // Tile silicon area (cells + per-column ADC amortized over `sharing`
  // columns per converter).
  double tile_area_um2(const CrossbarSpec& spec, int column_sharing = 8) const;

  // Whole-model figures given the mapper's tile count.
  double model_mvm_energy_nj(int64_t num_tiles, const CrossbarSpec& spec,
                             int adc_bits) const;

  const XbarEnergyParams& params() const { return params_; }

 private:
  XbarEnergyParams params_;
};

}  // namespace rhw::xbar
