#include "xbar/tiled_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/thread_pool.hpp"

namespace rhw::xbar {

TiledMatrix::TiledMatrix(const float* w, int64_t out, int64_t in, int64_t ldw,
                         const CrossbarSpec& spec, CircuitModel model,
                         rhw::RandomEngine* variation_rng)
    : out_(out), in_(in) {
  for (int64_t i0 = 0; i0 < in; i0 += spec.rows) {
    const int64_t in_n = std::min(spec.rows, in - i0);
    for (int64_t o0 = 0; o0 < out; o0 += spec.cols) {
      const int64_t out_m = std::min(spec.cols, out - o0);
      tiles_.push_back({i0, o0,
                        CrossbarArray(w + o0 * ldw + i0, out_m, in_n, ldw,
                                      spec, model, variation_rng)});
    }
  }
}

void TiledMatrix::matmul(const float* x, int64_t batch, float* y) const {
  if (batch <= 0) return;
  rhw::parallel_for(batch, [&](int64_t begin, int64_t end) {
    const int64_t n = end - begin;
    float* yb = y + begin * out_;
    std::fill(yb, yb + n * out_, 0.f);
    std::vector<double> scratch;  // staging buffer shared across tiles
    for (const PlacedTile& t : tiles_) {
      t.array.matmul_strided(x + begin * in_ + t.i0, in_, n, yb + t.o0, out_,
                             /*accumulate=*/true, scratch);
    }
  });
}

std::vector<float> TiledMatrix::matvec(const std::vector<float>& x) const {
  if (static_cast<int64_t>(x.size()) != in_) {
    throw std::invalid_argument("TiledMatrix::matvec: bad input size");
  }
  std::vector<float> y(static_cast<size_t>(out_), 0.f);
  for (const PlacedTile& t : tiles_) {
    t.array.matmul_strided(x.data() + t.i0, in_, 1, y.data() + t.o0, out_,
                           /*accumulate=*/true);
  }
  return y;
}

void TiledMatrix::scale_output_gains(const std::vector<float>& gains) {
  if (static_cast<int64_t>(gains.size()) != out_) {
    throw std::invalid_argument("TiledMatrix::scale_output_gains: bad size");
  }
  for (PlacedTile& t : tiles_) {
    t.array.scale_outputs(gains.data() + t.o0);
  }
}

std::vector<float> TiledMatrix::effective_weights() const {
  std::vector<float> w(static_cast<size_t>(out_ * in_), 0.f);
  for (const PlacedTile& t : tiles_) {
    const auto& w_eff = t.array.effective_weights();
    const int64_t tile_in = t.array.in_n();
    for (int64_t o = 0; o < t.array.out_m(); ++o) {
      for (int64_t i = 0; i < tile_in; ++i) {
        w[static_cast<size_t>((t.o0 + o) * in_ + t.i0 + i)] =
            w_eff[static_cast<size_t>(o * tile_in + i)];
      }
    }
  }
  return w;
}

}  // namespace rhw::xbar
