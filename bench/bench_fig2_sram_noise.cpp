// Fig. 2: surgical noise perturbation mu vs 8T-6T cell ratio r for different
// supply voltages — analytic model cross-checked by Monte-Carlo injection,
// plus the MSB-protection ablation (DESIGN.md §4).
#include <cstdio>

#include "core/rng.hpp"
#include "exp/table_printer.hpp"
#include "sram/bit_error_injector.hpp"

using namespace rhw;

int main() {
  std::printf("=== Fig. 2: surgical noise mu vs 8T-6T ratio r and Vdd ===\n");
  std::printf(
      "mu = expected |perturbation| / full-scale of an 8-bit word stored in\n"
      "hybrid 8T-6T memory (analytic first-order model; 'mc' columns are\n"
      "Monte-Carlo over 200k random words).\n\n");

  const sram::BitErrorModel model;
  const double vdds[] = {0.62, 0.66, 0.70, 0.74, 0.78};

  std::vector<std::string> headers{"r (#8T/#6T)"};
  for (double vdd : vdds) {
    headers.push_back("mu@" + exp::fmt(vdd, 2) + "V");
    headers.push_back("mc@" + exp::fmt(vdd, 2) + "V");
  }
  exp::TablePrinter table(headers);

  RandomEngine rng(0xF16);
  for (int n6 = 1; n6 <= 8; ++n6) {
    sram::HybridWordConfig word;
    word.num_8t = 8 - n6;
    std::vector<std::string> row{word.ratio_label()};
    for (double vdd : vdds) {
      const double analytic = sram::surgical_noise_mu(word, model, vdd);
      sram::BitErrorInjector inj(word, model, vdd);
      const double measured = inj.measure_mu(200000, rng);
      row.push_back(exp::fmt(analytic, 5));
      row.push_back(exp::fmt(measured, 5));
    }
    table.add_row(std::move(row));
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig2_sram_noise.csv");

  // Ablation: significance-driven storage (MSBs in 8T) vs the reversed
  // layout. The protected layout is why hybrid memories yield *surgical*
  // (small, LSB-bounded) noise at all.
  std::printf("\n--- Ablation: MSB-protected vs MSB-exposed layout, "
              "Vdd = 0.68 V ---\n");
  exp::TablePrinter ablation({"r (#8T/#6T)", "mu (MSBs in 8T)",
                              "mu (MSBs in 6T)", "ratio"});
  for (int n6 = 1; n6 <= 7; ++n6) {
    sram::HybridWordConfig protected_word;
    protected_word.num_8t = 8 - n6;
    sram::HybridWordConfig exposed = protected_word;
    exposed.msb_protected = false;
    const double mu_p = sram::surgical_noise_mu(protected_word, model, 0.68);
    const double mu_e = sram::surgical_noise_mu(exposed, model, 0.68);
    ablation.add_row({protected_word.ratio_label(), exp::fmt(mu_p, 6),
                      exp::fmt(mu_e, 6), exp::fmt(mu_e / mu_p, 1)});
  }
  ablation.print();
  ablation.write_csv(exp::bench_out_dir() + "/fig2_ablation_msb.csv");

  std::printf("\nPaper shape check: mu rises as 6T cells replace 8T cells and "
              "as Vdd scales down (compare columns left to right, rows top to "
              "bottom).\n");
  return 0;
}
