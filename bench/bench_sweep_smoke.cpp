// Sweep-engine smoke: thin wrapper over the "sweep_smoke" experiment preset
// — equivalently: `rhw_run sweep_smoke`. The preset sets verify=1, so every
// run re-executes the grid serially and fails on any cell mismatch: the CI
// guard for the engine's determinism contract (lane count from
// $RHW_SWEEP_THREADS). Writes BENCH_sweep_smoke.json (rhw-sweep-v4).
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"sweep_smoke"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
