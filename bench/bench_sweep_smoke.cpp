// Sweep-engine smoke: a tiny grid (untrained VGG8, SRAM + crossbar arms,
// FGSM + PGD plus stochastic-aware EOT-PGD and black-box Square cells,
// 2 trials) run on a couple of lanes, with a built-in serial parity check
// and a speedup report. This is the CI guard for the engine's determinism
// contract: parallel results must be bit-identical to the serial path on
// every platform, every run — including for attacks that reseed or query
// the eval net while crafting. Writes BENCH_sweep_smoke.json.
//
//   $ ./bench_sweep_smoke            # lanes from RHW_SWEEP_THREADS (default 2)
#include "bench_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Sweep-engine smoke",
                "Tiny grid, parallel vs serial parity + speedup. Accuracy "
                "numbers are meaningless (untrained model); determinism and "
                "scheduling are what is under test.");

  data::SynthCifarConfig dcfg;
  dcfg.num_classes = 10;
  dcfg.train_per_class = 4;
  dcfg.test_per_class = 8;
  dcfg.image_size = 16;
  const auto dataset = data::make_synth_cifar(dcfg);
  models::Model model = models::build_model("vgg8", 10, 0.125f, 16);
  model.net->set_training(false);
  const data::Dataset eval_set = dataset.test.head(64);

  exp::SweepGrid grid;
  grid.model = &model;
  grid.width_mult = 0.125f;
  grid.in_size = 16;
  grid.eval_set = &eval_set;
  grid.base.batch_size = 32;
  grid.trials = 2;
  grid.backends.push_back({"ideal", "ideal"});
  grid.backends.push_back({"sram", "sram:sites=2,num_8t=4,vdd=0.64"});
  grid.backends.push_back({"xbar", "xbar:size=16"});
  grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
  grid.modes.push_back({"SH-sram", "ideal", "sram"});
  grid.modes.push_back({"SH-xbar", "ideal", "xbar"});
  grid.modes.push_back({"HH-xbar", "xbar", "xbar"});
  grid.attacks.push_back({"fgsm", {0.f, 0.1f, 0.2f}});
  grid.attacks.push_back({"pgd", {8.f / 255.f}});
  // Stochastic-aware arms, tiny budgets: what's under test is that attacks
  // which reseed (EOT-PGD) or query (Square) the eval net while crafting
  // still sweep bit-identically at any lane count.
  grid.attacks.push_back({"eot_pgd:steps=2,samples=2", {8.f / 255.f}});
  grid.attacks.push_back({"square:queries=12", {0.1f}});
  grid.attacks.push_back({"mifgsm:steps=2", {0.1f}});

  exp::SweepEngine::Options opt;
  opt.threads = exp::sweep_threads_env(2);
  exp::SweepEngine engine(opt);
  const exp::SweepResult parallel = engine.run(grid);
  bench::report_sweep(parallel);

  exp::SweepEngine::Options serial_opt;
  serial_opt.threads = 1;
  exp::SweepEngine serial_engine(serial_opt);
  const exp::SweepResult serial = serial_engine.run(grid);

  const size_t mismatches = bench::count_cell_mismatches(parallel, serial);
  parallel.write_json("BENCH_sweep_smoke.json", "sweep_smoke");
  if (mismatches > 0) {
    std::fprintf(stderr, "sweep smoke FAILED: %zu mismatching cells\n",
                 mismatches);
    return 1;
  }
  bench::report_parity(parallel, serial);
  return 0;
}
