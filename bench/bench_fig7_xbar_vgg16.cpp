// Fig. 7: AL vs eps for Attack-SW / SH / HH (FGSM and PGD) on VGG16 with
// synth-c100, crossbar sizes 16x16 and 32x32.
#include "bench_xbar_common.hpp"

int main() {
  rhw::bench::run_xbar_figure("vgg16", "synth-c100", "fig7_vgg16_c100");
  std::printf(
      "Additional paper shape check (complex dataset): under PGD, HH should "
      "show\nlower AL than SH (gradient obfuscation through the hardware "
      "forward path).\n");
  return 0;
}
