// Ablation: adaptive attacker (EOT-PGD) against the stochastic crossbar
// defense.
//
// Gradient obfuscation through read noise is known to be breakable by
// averaging gradients over noise draws (expectation over transformation).
// This bench quantifies how much of the HH robustness survives an adaptive
// attacker — the honest caveat any noise-as-defense result needs.
#include "bench_xbar_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Ablation: adaptive (EOT) attack on the crossbar defense",
                "HH-PGD with gradient averaging over k noise draws per step. "
                "k=1 is the paper's HH; larger k models an attacker who "
                "knows the hardware is stochastic.");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");
  models::Model mapped = bench::map_model(wb.trained.model, 32);

  exp::TablePrinter table({"attack", "eps", "clean", "adv", "AL"});
  const float eps_list[] = {8.f / 255.f, 16.f / 255.f, 32.f / 255.f};
  const double clean = attacks::clean_accuracy(*mapped.net, wb.eval_set);
  for (int k : {1, 4, 16}) {
    for (float eps : eps_list) {
      attacks::AdvEvalConfig cfg;
      // k=1 is the paper's plain HH-PGD; k>1 averages gradients over k
      // independently-reseeded noisy passes per step (the registry's
      // stochastic-aware "eot_pgd").
      cfg.attack = k == 1 ? "pgd"
                          : "eot_pgd:samples=" + std::to_string(k);
      cfg.epsilon = eps;
      const double adv = attacks::adversarial_accuracy(*mapped.net,
                                                       *mapped.net,
                                                       wb.eval_set, cfg);
      table.add_row({"EOT-PGD k=" + std::to_string(k),
                     exp::fmt(eps * 255, 0) + "/255", exp::fmt(clean, 2),
                     exp::fmt(adv, 2), exp::fmt(clean - adv, 2)});
    }
  }
  // Reference: the software white-box attack.
  for (float eps : eps_list) {
    attacks::AdvEvalConfig cfg;
    cfg.attack = "pgd";
    cfg.epsilon = eps;
    const auto sw = attacks::evaluate_attack(*wb.trained.model.net,
                                             *wb.trained.model.net,
                                             wb.eval_set, cfg);
    table.add_row({"Attack-SW (ref)", exp::fmt(eps * 255, 0) + "/255",
                   exp::fmt(sw.clean_acc, 2), exp::fmt(sw.adv_acc, 2),
                   exp::fmt(sw.adversarial_loss(), 2)});
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/ablation_adaptive_eot.csv");
  std::printf(
      "\nReading guide: AL grows with k (the adaptive attacker recovers part "
      "of the\ngradient signal), but the deterministic weight distortion keeps "
      "a residual\nrobustness floor below the software baseline's AL.\n");
  return 0;
}
