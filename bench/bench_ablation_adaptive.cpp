// Ablation: adaptive attacker (EOT-PGD) against the stochastic crossbar
// defense — thin wrapper over the "ablation_adaptive" experiment preset,
// equivalently `rhw_run ablation_adaptive`. Extra arguments pass through as
// overrides (e.g. attacks+=eot_pgd:samples=64@0.125).
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"ablation_adaptive"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
