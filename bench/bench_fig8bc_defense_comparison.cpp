// Fig. 8(b)-(c): comparison of crossbar non-ideality robustness (SH on 32x32)
// against software defenses — 4-bit input discretization [6] and QUANOS [8] —
// on VGG16 with synth-c100, for FGSM (b) and PGD (c). Extended beyond the
// paper with a randomized-smoothing arm, which also exercises the sweep's
// certified-radius column (rhw-sweep-v3).
//
// One SweepEngine grid covers all five defenses x both attacks, and every
// arm is declared purely by spec strings: the hardware side through
// hw::BackendRegistry, the defense side through defenses::DefenseRegistry
// (docs/DEFENSES.md) — no custom binder code anywhere.
//
// RHW_FAST=1 switches to VGG8 / synth-c10 so CI can regenerate the artifact
// (same pipeline, same schema, minutes instead of hours).
#include <algorithm>
#include <cstdlib>

#include "bench_xbar_common.hpp"

using namespace rhw;

namespace {

void add_curve(exp::TablePrinter& table, const exp::AlCurve& curve,
               const std::string& attack) {
  for (const auto& pt : curve.points) {
    table.add_row({attack, curve.label, exp::fmt(pt.epsilon, 3),
                   exp::fmt(pt.clean_acc, 2), exp::fmt(pt.adv_acc, 2),
                   exp::fmt(pt.al, 2)});
  }
}

bool fast_mode() {
  const char* env = std::getenv("RHW_FAST");
  return env != nullptr && *env != '\0' && *env != '0';
}

}  // namespace

int main() {
  const bool fast = fast_mode();
  const std::string arch = fast ? "vgg8" : "vgg16";
  const std::string dataset = fast ? "synth-c10" : "synth-c100";
  bench::banner(
      "Fig. 8(b)-(c): crossbar defense vs 4-bit discretization vs QUANOS vs "
      "randomized smoothing (" + arch + ", " + dataset + ")" +
          (fast ? " [RHW_FAST]" : ""),
      "All defenses evaluated white-box on themselves except SH, whose "
      "adversaries come from the undefended software baseline (the paper's "
      "SH-on-Cross32 configuration). Every arm is a (backend spec, defense "
      "spec) pair.");
  bench::Workbench wb = bench::load_workbench(arch, dataset);

  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  grid.backends.push_back({"ideal", "ideal"});
  // Defense 1: crossbar mapping (SH mode, 32x32), via the backend registry.
  grid.backends.push_back({"x32", bench::xbar_spec(32)});
  // Defense 2: 4-bit pixel discretization [6] — a defense spec over the
  // ideal substrate.
  grid.backends.push_back({"disc4b", "ideal", "jpeg_quant:bits=4"});
  // Defense 3: QUANOS [8] (ANS-driven hybrid quantization), requantizing the
  // replica's clone from the calibration set. Deterministic, so every
  // replica is bit-identical.
  grid.backends.push_back({"quanos", "ideal",
                           "quanos:samples=" +
                               std::to_string(std::min<int64_t>(
                                   wb.eval_set.size(), 128)),
                           &wb.data.test});
  // Defense 4 (beyond the paper): randomized smoothing — majority vote over
  // noisy passes, with a Clopper-Pearson certified L2 radius reported in the
  // sweep's cert column. 16 votes is the floor at alpha=0.001: fewer samples
  // cannot push the lower bound past 1/2 even on unanimous votes
  // (alpha^(1/n) > 0.5 needs n >= 10; 16 leaves certification headroom).
  grid.backends.push_back({"smoothed", "ideal",
                           "smooth:sigma=0.1,samples=16"});

  grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
  grid.modes.push_back({"SH-Cross32", "ideal", "x32"});
  grid.modes.push_back({"4b-discretization", "disc4b", "disc4b"});
  grid.modes.push_back({"QUANOS", "quanos", "quanos"});
  grid.modes.push_back({"Smooth", "smoothed", "smoothed"});
  grid.attacks.push_back({"fgsm", exp::fgsm_epsilons()});
  grid.attacks.push_back({"pgd", exp::pgd_epsilons()});

  exp::SweepEngine engine(bench::sweep_options());
  const exp::SweepResult result = engine.run(grid);
  bench::finish_sweep(grid, result, "fig8bc_defense_comparison");
  bench::print_map_report(engine, "x32", wb.trained.model.name, 32, 20e3);

  exp::TablePrinter table({"attack", "defense", "eps", "clean", "adv", "AL"});
  for (const std::string spec : {"fgsm", "pgd"}) {
    const std::string attack = attacks::attack_display_name(spec);
    for (const char* mode : {"Attack-SW", "SH-Cross32", "4b-discretization",
                             "QUANOS", "Smooth"}) {
      add_curve(table, result.curve(mode, spec), attack);
    }
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig8bc_defense_comparison.csv");

  // Certified-radius line for the smoothing arm (any (attack, eps) cell of
  // the mode carries the same per-trial value).
  for (size_t m = 0; m < result.mode_labels.size(); ++m) {
    if (result.mode_labels[m] != "Smooth") continue;
    const auto* smooth_agg = result.find(m, 0, 0);
    std::printf("\n[cert] Smooth: mean certified L2 radius %.4f (sigma=0.1, "
                "16 votes, Clopper-Pearson @ 99.9%%)\n",
                smooth_agg != nullptr ? smooth_agg->cert.mean : 0.0);
  }
  std::printf(
      "\nPaper shape check: FGSM -> SH-Cross32 should have the lowest AL of "
      "all\npaper defenses (paper: ~15%% better than 4b, ~4%% better than "
      "QUANOS); PGD ->\nQUANOS should win with SH second.\n");
  return 0;
}
