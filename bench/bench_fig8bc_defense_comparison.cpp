// Fig. 8(b)-(c): comparison of crossbar non-ideality robustness (SH on 32x32)
// against software defenses — 4-bit input discretization [6] and QUANOS [8] —
// on VGG16 with synth-c100, for FGSM (b) and PGD (c).
//
// One SweepEngine grid covers all four defenses x both attacks: the hardware
// arm is a registry spec, the software defenses are backend binders (the
// discretizer wraps the replica's clone, QUANOS requantizes it in place).
#include <algorithm>

#include "bench_xbar_common.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"

using namespace rhw;

namespace {

void add_curve(exp::TablePrinter& table, const exp::AlCurve& curve,
               const std::string& attack) {
  for (const auto& pt : curve.points) {
    table.add_row({attack, curve.label, exp::fmt(pt.epsilon, 3),
                   exp::fmt(pt.clean_acc, 2), exp::fmt(pt.adv_acc, 2),
                   exp::fmt(pt.al, 2)});
  }
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 8(b)-(c): crossbar defense vs 4-bit discretization vs QUANOS "
      "(VGG16, synth-c100)",
      "All defenses evaluated white-box on themselves except SH, whose "
      "adversaries come from the undefended software baseline (the paper's "
      "SH-on-Cross32 configuration).");
  bench::Workbench wb = bench::load_workbench("vgg16", "synth-c100");

  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  grid.backends.push_back({"ideal", "ideal", nullptr, nullptr});
  // Defense 1: crossbar mapping (SH mode, 32x32), via the backend registry.
  grid.backends.push_back({"x32", bench::xbar_spec(32), nullptr, nullptr});
  // Defense 2: 4-bit pixel discretization [6] — a wrapper module around the
  // replica's clone, adapted to the backend seam.
  exp::SweepBackendDef disc_def;
  disc_def.key = "disc4b";
  disc_def.bind = [](models::Model& m) {
    quant::PixelDiscretizer disc;
    disc.bits = 4;
    return exp::make_module_backend(
        "disc4b", std::make_unique<quant::DiscretizedModel>(*m.net, disc));
  };
  grid.backends.push_back(std::move(disc_def));
  // Defense 3: QUANOS [8] (ANS-driven hybrid quantization), applied to the
  // clone in place. Deterministic, so every replica is bit-identical.
  exp::SweepBackendDef quanos_def;
  quanos_def.key = "quanos";
  quanos_def.bind = [&wb](models::Model& m) {
    quant::QuanosConfig qcfg;
    qcfg.sample_count = std::min<int64_t>(wb.eval_set.size(), 128);
    (void)quant::apply_quanos(*m.net, wb.data.test, qcfg);
    auto backend = hw::make_backend("ideal");
    backend->prepare(m);
    return backend;
  };
  grid.backends.push_back(std::move(quanos_def));

  grid.modes.push_back({"Attack-SW", "ideal", "ideal"});
  grid.modes.push_back({"SH-Cross32", "ideal", "x32"});
  grid.modes.push_back({"4b-discretization", "disc4b", "disc4b"});
  grid.modes.push_back({"QUANOS", "quanos", "quanos"});
  grid.attacks.push_back({"fgsm", exp::fgsm_epsilons()});
  grid.attacks.push_back({"pgd", exp::pgd_epsilons()});

  exp::SweepEngine engine(bench::sweep_options());
  const exp::SweepResult result = engine.run(grid);
  bench::finish_sweep(grid, result, "fig8bc_defense_comparison");
  bench::print_map_report(engine, "x32", wb.trained.model.name, 32, 20e3);

  exp::TablePrinter table({"attack", "defense", "eps", "clean", "adv", "AL"});
  for (const std::string spec : {"fgsm", "pgd"}) {
    const std::string attack = attacks::attack_display_name(spec);
    for (const char* mode :
         {"Attack-SW", "SH-Cross32", "4b-discretization", "QUANOS"}) {
      add_curve(table, result.curve(mode, spec), attack);
    }
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig8bc_defense_comparison.csv");
  std::printf(
      "\nPaper shape check: FGSM -> SH-Cross32 should have the lowest AL of "
      "all\ndefenses (paper: ~15%% better than 4b, ~4%% better than QUANOS); "
      "PGD -> QUANOS\nshould win with SH second.\n");
  return 0;
}
