// Fig. 8(b)-(c): comparison of crossbar non-ideality robustness (SH on 32x32)
// against software defenses — 4-bit input discretization [6] and QUANOS [8] —
// on VGG16 with synth-c100, for FGSM (b) and PGD (c).
#include "bench_xbar_common.hpp"
#include "quant/pixel_discretizer.hpp"
#include "quant/quanos.hpp"

using namespace rhw;

namespace {

void add_curve(exp::TablePrinter& table, const exp::AlCurve& curve,
               const std::string& attack) {
  for (const auto& pt : curve.points) {
    table.add_row({attack, curve.label, exp::fmt(pt.epsilon, 3),
                   exp::fmt(pt.clean_acc, 2), exp::fmt(pt.adv_acc, 2),
                   exp::fmt(pt.al, 2)});
  }
}

}  // namespace

int main() {
  bench::banner(
      "Fig. 8(b)-(c): crossbar defense vs 4-bit discretization vs QUANOS "
      "(VGG16, synth-c100)",
      "All defenses evaluated white-box on themselves except SH, whose "
      "adversaries come from the undefended software baseline (the paper's "
      "SH-on-Cross32 configuration).");
  bench::Workbench wb = bench::load_workbench("vgg16", "synth-c100");
  models::Model& software = wb.trained.model;
  auto ideal = hw::make_backend("ideal");
  ideal->prepare(software);

  // Defense 1: crossbar mapping (SH mode, 32x32), via the backend registry.
  bench::PreparedBackend mapped = bench::map_backend(software, 32);

  // Defense 2: 4-bit pixel discretization [6].
  models::Model disc_base = bench::clone_model(software);
  quant::PixelDiscretizer disc;
  disc.bits = 4;
  quant::DiscretizedModel discretized(*disc_base.net, disc);

  // Defense 3: QUANOS [8] (ANS-driven hybrid quantization).
  models::Model quanos_model = bench::clone_model(software);
  quant::QuanosConfig qcfg;
  qcfg.sample_count = std::min<int64_t>(wb.eval_set.size(), 128);
  const auto report = quant::apply_quanos(*quanos_model.net, wb.data.test,
                                          qcfg);
  std::printf("[bench] QUANOS: median ANS %.4f, %zu layers -> 4-bit\n",
              report.ans_median,
              static_cast<size_t>(std::count(report.bits.begin(),
                                             report.bits.end(), qcfg.low_bits)));

  exp::TablePrinter table({"attack", "defense", "eps", "clean", "adv", "AL"});
  struct AttackSpec {
    attacks::AttackKind kind;
    std::vector<float> eps;
  };
  const AttackSpec specs[] = {
      {attacks::AttackKind::kFgsm, exp::fgsm_epsilons()},
      {attacks::AttackKind::kPgd, exp::pgd_epsilons()},
  };
  for (const auto& spec : specs) {
    const std::string attack = attacks::attack_name(spec.kind);
    add_curve(table,
              exp::al_curve("Attack-SW", *ideal, *ideal, wb.eval_set,
                            spec.kind, spec.eps),
              attack);
    add_curve(table,
              exp::al_curve("SH-Cross32", *ideal, mapped.hw(), wb.eval_set,
                            spec.kind, spec.eps),
              attack);
    add_curve(table,
              exp::al_curve("4b-discretization", discretized, discretized,
                            wb.eval_set, spec.kind, spec.eps),
              attack);
    add_curve(table,
              exp::al_curve("QUANOS", *quanos_model.net, *quanos_model.net,
                            wb.eval_set, spec.kind, spec.eps),
              attack);
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig8bc_defense_comparison.csv");
  std::printf(
      "\nPaper shape check: FGSM -> SH-Cross32 should have the lowest AL of "
      "all\ndefenses (paper: ~15%% better than 4b, ~4%% better than QUANOS); "
      "PGD -> QUANOS\nshould win with SH second.\n");
  return 0;
}
