// Fig. 8(b)-(c): thin wrapper over the "fig8bc" experiment preset —
// equivalently: `rhw_run fig8bc`. RHW_FAST=1 switches the preset to its
// VGG8/synth-c10 small-model pipeline so CI can regenerate the artifact
// (same schema and arm structure as the full figure). Extra arguments pass
// through as overrides.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"fig8bc"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
