// Table III: ALs (%) for the HH PGD attack on crossbar sizes 16x16, 32x32
// and 64x64 (VGG8, synth-c10), eps in {2,4,8,16,32}/255.
#include "bench_xbar_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Table III: HH-PGD AL vs crossbar size (VGG8, synth-c10)",
                "Larger crossbars carry more parasitics, hence more intrinsic "
                "noise and lower AL.");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");

  const std::vector<float> eps{2.f / 255.f, 4.f / 255.f, 8.f / 255.f,
                               16.f / 255.f, 32.f / 255.f};
  const int64_t sizes[] = {16, 32, 64};

  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  for (const int64_t size : sizes) {
    const std::string key = "x" + std::to_string(size);
    grid.backends.push_back({key, bench::xbar_spec(size)});
    grid.modes.push_back({"HH/" + key, key, key});
  }
  grid.attacks.push_back({"pgd", eps});

  exp::SweepEngine engine(bench::sweep_options());
  const exp::SweepResult result = engine.run(grid);
  bench::finish_sweep(grid, result, "table3_xbar_sizes");

  exp::TablePrinter table({"eps", "Cross16", "Cross32", "Cross64"});
  std::vector<std::vector<double>> al(eps.size());
  for (const int64_t size : sizes) {
    const std::string key = "x" + std::to_string(size);
    bench::print_map_report(engine, key, wb.trained.model.name, size, 20e3);
    const auto curve = result.curve("HH/" + key, "pgd");
    for (size_t i = 0; i < eps.size(); ++i) {
      al[i].push_back(curve.points[i].al);
    }
  }
  for (size_t i = 0; i < eps.size(); ++i) {
    table.add_row({std::to_string(static_cast<int>(eps[i] * 255 + 0.5f)) +
                       "/255",
                   exp::fmt(al[i][0], 2), exp::fmt(al[i][1], 2),
                   exp::fmt(al[i][2], 2)});
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/table3_xbar_sizes.csv");
  std::printf(
      "\nPaper shape check: for each eps, AL should decrease with crossbar "
      "size\n(Cross64 most robust; paper rows: ~72 / ~71 / ~68).\n");
  return 0;
}
