// Table III: thin wrapper over the "table3" experiment preset —
// equivalently: `rhw_run table3`. Extra arguments pass through as overrides.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"table3"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
