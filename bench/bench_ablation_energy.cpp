// Ablation: the efficiency-robustness frontier of hybrid 8T-6T activation
// memories (the paper's motivating trade — DESIGN.md §4).
//
// Sweeps the supply voltage with the Table-I-style selected configuration
// installed and reports, per Vdd: activation-memory energy per inference,
// area, clean accuracy, adversarial accuracy and AL. Also prices the
// crossbar variant per tile size.
#include "bench_common.hpp"
#include "sram/energy_model.hpp"
#include "sram/layer_selector.hpp"
#include "xbar/energy_model.hpp"
#include "xbar/mapper.hpp"

using namespace rhw;

int main() {
  bench::banner("Ablation: energy vs robustness",
                "Hybrid memories buy energy/area with 6T cells and Vdd "
                "scaling; the same knobs set the bit-error noise that buys "
                "robustness. One table, all four axes.");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");
  models::Model& model = wb.trained.model;

  // A representative hybrid configuration: the first two conv sites at 2/6
  // (aggressive), mirroring the early-layer selections of Tables I/II.
  std::vector<sram::SiteChoice> selection;
  for (size_t s = 0; s < 2; ++s) {
    sram::SiteChoice c;
    c.site_index = s;
    c.site_label = model.sites[s].label;
    c.word.num_8t = 2;
    selection.push_back(c);
  }
  std::vector<std::pair<std::string, sram::HybridWordConfig>> noisy_sites;
  for (const auto& c : selection) noisy_sites.emplace_back(c.site_label, c.word);

  const Tensor sample = wb.eval_set.slice(0, 1).images;
  sram::SramEnergyModel energy_model;

  exp::TablePrinter table({"Vdd", "energy/inf (pJ)", "saving %", "area (mm2)",
                           "clean %", "adv %", "AL"});
  attacks::AdvEvalConfig acfg;
  acfg.epsilon = 0.1f;
  for (double vdd : {1.0, 0.9, 0.8, 0.74, 0.68, 0.62}) {
    sram::apply_selection(model, selection, vdd);
    const auto res = attacks::evaluate_attack(*model.net, *model.net,
                                              wb.eval_set, acfg);
    const auto report =
        sram::activation_memory_report(model, sample, vdd, noisy_sites,
                                       energy_model);
    table.add_row({exp::fmt(vdd, 2) + "V",
                   exp::fmt(report.total_read_energy_fj / 1e3, 2),
                   exp::fmt(report.energy_saving_pct(), 1),
                   exp::fmt(report.total_area_um2 / 1e6, 4),
                   exp::fmt(res.clean_acc, 2), exp::fmt(res.adv_acc, 2),
                   exp::fmt(res.adversarial_loss(), 2)});
  }
  sram::clear_all_site_hooks(model);
  table.print();
  table.write_csv(exp::bench_out_dir() + "/ablation_energy_sram.csv");
  std::printf(
      "\nReading guide: scaling Vdd cuts energy quadratically; below ~0.74 V "
      "the 6T\nbit errors kick in, AL starts dropping (robustness), and "
      "eventually clean\naccuracy pays — the frontier the paper's methodology "
      "navigates.\n");

  // Crossbar energy per tile size (same model, mapped).
  std::printf("\n--- Crossbar MVM energy by tile size (VGG8) ---\n");
  xbar::XbarEnergyModel xem;
  exp::TablePrinter xtable({"tile", "tiles", "E/MVM-pass (nJ)",
                            "per-weight (fJ)", "tile area (um2)"});
  for (int64_t size : {16, 32, 64}) {
    models::Model mapped = bench::clone_model(model);
    xbar::XbarMapConfig cfg;
    cfg.spec.rows = size;
    cfg.spec.cols = size;
    const auto report = xbar::map_onto_crossbars(*mapped.net, cfg);
    const double total_nj =
        xem.model_mvm_energy_nj(report.num_tiles, cfg.spec, cfg.adc_bits);
    const double per_weight =
        xem.tile_mvm_energy_fj(cfg.spec, cfg.adc_bits) /
        static_cast<double>(size * size);
    xtable.add_row({std::to_string(size) + "x" + std::to_string(size),
                    std::to_string(report.num_tiles), exp::fmt(total_nj, 2),
                    exp::fmt(per_weight, 2),
                    exp::fmt(xem.tile_area_um2(cfg.spec), 0)});
  }
  xtable.print();
  xtable.write_csv(exp::bench_out_dir() + "/ablation_energy_xbar.csv");
  std::printf(
      "\nReading guide: larger tiles amortize ADC/DAC energy per weight — the "
      "paper's\nobservation that bigger crossbars are both more efficient "
      "and, via their\nnon-idealities, more robust.\n");
  return 0;
}
