// Table I: layer-wise hybrid activation-memory configurations for VGG19 on
// synth-c10 and synth-c100, selected by the Fig. 4 methodology.
#include "bench_sram_tables.hpp"

int main() {
  rhw::bench::print_config_table("vgg19", "table1_vgg19");
  std::printf(
      "Paper shape check: noise-injection sites should concentrate in the\n"
      "initial layers, with a small clean-accuracy deviation (paper: 2.61%% /"
      " 2.9%%).\n");
  return 0;
}
