// Shared driver for the crossbar robustness benches (Figs. 6-8, Table III).
//
// All hardware comes through the backend registry: a crossbar configuration
// is a spec string ("xbar:size=32,rmin=10e3,..."), and the paper's attack
// modes are (grad backend, eval backend) pairings declared as SweepMode rows.
// The whole figure is one exp::SweepGrid evaluated concurrently by
// exp::SweepEngine — per-cell results are bit-identical to the serial path
// (RHW_SWEEP_VERIFY=1 re-checks that on every run).
#pragma once

#include <string>

#include "bench_common.hpp"
#include "exp/ascii_plot.hpp"
#include "hw/registry.hpp"
#include "hw/xbar_backend.hpp"

namespace rhw::bench {

// A prepared hardware model: the clone the backend was installed on plus the
// backend handle serving it. Still used by the ablation benches that need a
// single mapped model outside a sweep grid.
struct PreparedBackend {
  models::Model model;
  hw::BackendPtr backend;

  hw::HardwareBackend& hw() { return *backend; }
};

inline PreparedBackend prepare_backend(const models::Model& software,
                                       const std::string& spec,
                                       const data::Dataset* calibration =
                                           nullptr) {
  PreparedBackend out{bench::clone_model(software), hw::make_backend(spec)};
  out.backend->prepare(out.model, calibration);
  return out;
}

inline std::string xbar_spec(int64_t size, double r_min = 20e3,
                             uint64_t seed = 0xB0B0) {
  // Constant ON/OFF ratio of 10 (paper): rmax tracks rmin inside the factory.
  return "xbar:size=" + std::to_string(size) +
         ",rmin=" + std::to_string(r_min) + ",seed=" + std::to_string(seed);
}

inline PreparedBackend map_backend(const models::Model& software, int64_t size,
                                   double r_min = 20e3,
                                   uint64_t seed = 0xB0B0) {
  PreparedBackend out = prepare_backend(software, xbar_spec(size, r_min, seed));
  const auto& report =
      dynamic_cast<const hw::XbarBackend&>(*out.backend).map_report();
  std::printf(
      "[bench] mapped %s onto %lldx%lld crossbars (RMIN=%.0f kOhm): %lld "
      "tiles, mean|dW|/max|W| = %.4f\n",
      software.name.c_str(), static_cast<long long>(size),
      static_cast<long long>(size), r_min / 1e3,
      static_cast<long long>(report.num_tiles),
      report.mean_rel_weight_error);
  return out;
}

// Legacy shape used by the ablation benches: just the mapped model.
inline models::Model map_model(const models::Model& software, int64_t size,
                               double r_min = 20e3, uint64_t seed = 0xB0B0) {
  return std::move(map_backend(software, size, r_min, seed).model);
}

// Prints the mapping line the serial driver used to print per size, from the
// engine's prototype replica.
inline void print_map_report(exp::SweepEngine& engine, const std::string& key,
                             const std::string& model_name, int64_t size,
                             double r_min) {
  const auto* xb = dynamic_cast<const hw::XbarBackend*>(engine.backend(key));
  if (xb == nullptr) return;
  const auto& report = xb->map_report();
  std::printf(
      "[bench] mapped %s onto %lldx%lld crossbars (RMIN=%.0f kOhm): %lld "
      "tiles, mean|dW|/max|W| = %.4f\n",
      model_name.c_str(), static_cast<long long>(size),
      static_cast<long long>(size), r_min / 1e3,
      static_cast<long long>(report.num_tiles),
      report.mean_rel_weight_error);
}

// Adds one mode's AL rows for one attack to the table and its series to the
// plot panel, from the engine's aggregated results.
inline void add_mode_rows(exp::TablePrinter& table,
                          std::vector<exp::Series>& panel,
                          const exp::SweepResult& result,
                          const std::string& size_label,
                          const std::string& mode_name,
                          const std::string& mode_label,
                          const std::string& attack_spec) {
  const auto curve = result.curve(mode_label, attack_spec);
  const std::string attack = attacks::attack_display_name(attack_spec);
  exp::Series series;
  series.label = mode_name;
  for (const auto& pt : curve.points) {
    table.add_row({size_label, attack, mode_name, exp::fmt(pt.epsilon, 3),
                   exp::fmt(pt.clean_acc, 2), exp::fmt(pt.adv_acc, 2),
                   exp::fmt(pt.al, 2)});
    series.x.push_back(pt.epsilon);
    series.y.push_back(pt.al);
  }
  panel.push_back(std::move(series));
}

inline void run_xbar_figure(const std::string& arch,
                            const std::string& dataset,
                            const std::string& figure_name) {
  banner(figure_name + ": crossbar non-ideality robustness, " + arch + " on " +
             dataset,
         "Attack-SW = software baseline attacked white-box; SH = software-"
         "crafted adversaries on the crossbar model; HH = adversaries crafted "
         "through the crossbar model itself. AL = clean - adversarial (%).");
  Workbench wb = load_workbench(arch, dataset);

  // The whole figure as one declarative grid: every (mode, attack, eps) cell
  // is independent and scheduled concurrently.
  const int64_t sizes[] = {16, 32};
  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  grid.backends.push_back({"ideal", "ideal"});
  for (const int64_t size : sizes) {
    const std::string key = "x" + std::to_string(size);
    const std::string size_label = "Cross" + std::to_string(size);
    grid.backends.push_back({key, xbar_spec(size)});
    grid.modes.push_back({size_label + "/Attack-SW", "ideal", "ideal"});
    grid.modes.push_back({size_label + "/SH", "ideal", key});
    grid.modes.push_back({size_label + "/HH", key, key});
  }
  grid.attacks.push_back({"fgsm", exp::fgsm_epsilons()});
  grid.attacks.push_back({"pgd", exp::pgd_epsilons()});

  exp::SweepEngine engine(sweep_options());
  const exp::SweepResult result = engine.run(grid);
  finish_sweep(grid, result, figure_name);

  exp::TablePrinter table({"crossbar", "attack", "mode", "eps", "clean",
                           "adv", "AL"});
  for (const int64_t size : sizes) {
    const std::string key = "x" + std::to_string(size);
    const std::string size_label = "Cross" + std::to_string(size);
    print_map_report(engine, key, wb.trained.model.name, size, 20e3);
    for (const std::string spec : {"fgsm", "pgd"}) {
      std::vector<exp::Series> panel;
      for (const char* mode : {"Attack-SW", "SH", "HH"}) {
        add_mode_rows(table, panel, result, size_label, mode,
                      size_label + "/" + mode, spec);
      }
      exp::PlotOptions opt;
      opt.title = size_label + " - " + attacks::attack_display_name(spec) +
                  " attack (AL vs eps)";
      opt.y_min = 0;
      opt.y_max = 100;
      std::printf("%s\n", exp::render_ascii_plot(panel, opt).c_str());
    }
    std::printf("[bench] %s\n",
                engine.backend(key)->energy_report().summary().c_str());
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/" + figure_name + ".csv");
  std::printf(
      "\nPaper shape check: SH and HH ALs sit well below Attack-SW at the "
      "same eps\n(paper: ~10-20%% lower), for both FGSM and PGD.\n");
}

}  // namespace rhw::bench
