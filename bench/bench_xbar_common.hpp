// Shared driver for the crossbar robustness benches (Figs. 6-8, Table III).
#pragma once

#include "bench_common.hpp"
#include "exp/ascii_plot.hpp"
#include "xbar/mapper.hpp"

namespace rhw::bench {

inline models::Model map_model(const models::Model& software, int64_t size,
                               double r_min = 20e3, uint64_t seed = 0xB0B0) {
  models::Model mapped = clone_model(software);
  xbar::XbarMapConfig cfg;
  cfg.spec.rows = size;
  cfg.spec.cols = size;
  cfg.spec.r_min = r_min;
  cfg.spec.r_max = r_min * 10.0;  // constant ON/OFF ratio of 10 (paper)
  cfg.seed = seed;
  const auto report = xbar::map_onto_crossbars(*mapped.net, cfg);
  std::printf(
      "[bench] mapped %s onto %lldx%lld crossbars (RMIN=%.0f kOhm): %lld "
      "tiles, mean|dW|/max|W| = %.4f\n",
      software.name.c_str(), static_cast<long long>(size),
      static_cast<long long>(size), r_min / 1e3,
      static_cast<long long>(report.num_tiles), report.mean_rel_weight_error);
  return mapped;
}

// Adds the three attack-mode AL curves (Attack-SW / SH / HH) for one attack
// kind and crossbar size to the table, and renders the paper-style AL(eps)
// panel as ASCII art.
inline void add_mode_curves(exp::TablePrinter& table,
                            const std::string& size_label,
                            models::Model& software, models::Model& mapped,
                            const data::Dataset& eval_set,
                            attacks::AttackKind kind,
                            std::span<const float> eps) {
  struct ModeSpec {
    const char* name;
    nn::Module* grad_net;
    nn::Module* eval_net;
  };
  const ModeSpec modes[] = {
      {"Attack-SW", software.net.get(), software.net.get()},
      {"SH", software.net.get(), mapped.net.get()},
      {"HH", mapped.net.get(), mapped.net.get()},
  };
  std::vector<exp::Series> panel;
  for (const auto& mode : modes) {
    const auto curve = exp::al_curve(mode.name, *mode.grad_net, *mode.eval_net,
                                     eval_set, kind, eps);
    exp::Series series;
    series.label = mode.name;
    for (const auto& pt : curve.points) {
      table.add_row({size_label, attacks::attack_name(kind), mode.name,
                     exp::fmt(pt.epsilon, 3), exp::fmt(pt.clean_acc, 2),
                     exp::fmt(pt.adv_acc, 2), exp::fmt(pt.al, 2)});
      series.x.push_back(pt.epsilon);
      series.y.push_back(pt.al);
    }
    panel.push_back(std::move(series));
  }
  exp::PlotOptions opt;
  opt.title = size_label + " - " + attacks::attack_name(kind) +
              " attack (AL vs eps)";
  opt.y_min = 0;
  opt.y_max = 100;
  std::printf("%s\n", exp::render_ascii_plot(panel, opt).c_str());
}

inline void run_xbar_figure(const std::string& arch,
                            const std::string& dataset,
                            const std::string& figure_name) {
  banner(figure_name + ": crossbar non-ideality robustness, " + arch + " on " +
             dataset,
         "Attack-SW = software baseline attacked white-box; SH = software-"
         "crafted adversaries on the crossbar model; HH = adversaries crafted "
         "through the crossbar model itself. AL = clean - adversarial (%).");
  Workbench wb = load_workbench(arch, dataset);
  models::Model& software = wb.trained.model;

  exp::TablePrinter table({"crossbar", "attack", "mode", "eps", "clean",
                           "adv", "AL"});
  for (int64_t size : {16, 32}) {
    models::Model mapped = map_model(software, size);
    const auto fe = exp::fgsm_epsilons();
    const auto pe = exp::pgd_epsilons();
    add_mode_curves(table, "Cross" + std::to_string(size), software, mapped,
                    wb.eval_set, attacks::AttackKind::kFgsm, fe);
    add_mode_curves(table, "Cross" + std::to_string(size), software, mapped,
                    wb.eval_set, attacks::AttackKind::kPgd, pe);
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/" + figure_name + ".csv");
  std::printf(
      "\nPaper shape check: SH and HH ALs sit well below Attack-SW at the "
      "same eps\n(paper: ~10-20%% lower), for both FGSM and PGD.\n");
}

}  // namespace rhw::bench
