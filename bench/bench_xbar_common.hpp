// Shared driver for the crossbar robustness benches (Figs. 6-8, Table III).
//
// All hardware comes through the backend registry: a crossbar configuration
// is a spec string ("xbar:size=32,rmin=10e3,..."), and the paper's attack
// modes are (grad backend, eval backend) pairings over prepared backends.
#pragma once

#include <string>

#include "bench_common.hpp"
#include "exp/ascii_plot.hpp"
#include "hw/registry.hpp"
#include "hw/xbar_backend.hpp"

namespace rhw::bench {

// A prepared hardware model: the clone the backend was installed on plus the
// backend handle serving it.
struct PreparedBackend {
  models::Model model;
  hw::BackendPtr backend;

  hw::HardwareBackend& hw() { return *backend; }
};

inline PreparedBackend prepare_backend(const models::Model& software,
                                       const std::string& spec,
                                       const data::Dataset* calibration =
                                           nullptr) {
  PreparedBackend out{bench::clone_model(software), hw::make_backend(spec)};
  out.backend->prepare(out.model, calibration);
  return out;
}

inline std::string xbar_spec(int64_t size, double r_min = 20e3,
                             uint64_t seed = 0xB0B0) {
  // Constant ON/OFF ratio of 10 (paper): rmax tracks rmin inside the factory.
  return "xbar:size=" + std::to_string(size) +
         ",rmin=" + std::to_string(r_min) + ",seed=" + std::to_string(seed);
}

inline PreparedBackend map_backend(const models::Model& software, int64_t size,
                                   double r_min = 20e3,
                                   uint64_t seed = 0xB0B0) {
  PreparedBackend out = prepare_backend(software, xbar_spec(size, r_min, seed));
  const auto& report =
      dynamic_cast<const hw::XbarBackend&>(*out.backend).map_report();
  std::printf(
      "[bench] mapped %s onto %lldx%lld crossbars (RMIN=%.0f kOhm): %lld "
      "tiles, mean|dW|/max|W| = %.4f\n",
      software.name.c_str(), static_cast<long long>(size),
      static_cast<long long>(size), r_min / 1e3,
      static_cast<long long>(report.num_tiles),
      report.mean_rel_weight_error);
  return out;
}

// Legacy shape used by the ablation/table benches: just the mapped model.
inline models::Model map_model(const models::Model& software, int64_t size,
                               double r_min = 20e3, uint64_t seed = 0xB0B0) {
  return std::move(map_backend(software, size, r_min, seed).model);
}

// Adds the three attack-mode AL curves (Attack-SW / SH / HH) for one attack
// kind and crossbar size to the table, and renders the paper-style AL(eps)
// panel as ASCII art.
inline void add_mode_curves(exp::TablePrinter& table,
                            const std::string& size_label,
                            hw::HardwareBackend& ideal,
                            hw::HardwareBackend& mapped,
                            const data::Dataset& eval_set,
                            attacks::AttackKind kind,
                            std::span<const float> eps) {
  struct ModeSpec {
    const char* name;
    hw::HardwareBackend* grad_hw;
    hw::HardwareBackend* eval_hw;
  };
  const ModeSpec modes[] = {
      {"Attack-SW", &ideal, &ideal},
      {"SH", &ideal, &mapped},
      {"HH", &mapped, &mapped},
  };
  std::vector<exp::Series> panel;
  for (const auto& mode : modes) {
    const auto curve = exp::al_curve(mode.name, *mode.grad_hw, *mode.eval_hw,
                                     eval_set, kind, eps);
    exp::Series series;
    series.label = mode.name;
    for (const auto& pt : curve.points) {
      table.add_row({size_label, attacks::attack_name(kind), mode.name,
                     exp::fmt(pt.epsilon, 3), exp::fmt(pt.clean_acc, 2),
                     exp::fmt(pt.adv_acc, 2), exp::fmt(pt.al, 2)});
      series.x.push_back(pt.epsilon);
      series.y.push_back(pt.al);
    }
    panel.push_back(std::move(series));
  }
  exp::PlotOptions opt;
  opt.title = size_label + " - " + attacks::attack_name(kind) +
              " attack (AL vs eps)";
  opt.y_min = 0;
  opt.y_max = 100;
  std::printf("%s\n", exp::render_ascii_plot(panel, opt).c_str());
}

inline void run_xbar_figure(const std::string& arch,
                            const std::string& dataset,
                            const std::string& figure_name) {
  banner(figure_name + ": crossbar non-ideality robustness, " + arch + " on " +
             dataset,
         "Attack-SW = software baseline attacked white-box; SH = software-"
         "crafted adversaries on the crossbar model; HH = adversaries crafted "
         "through the crossbar model itself. AL = clean - adversarial (%).");
  Workbench wb = load_workbench(arch, dataset);

  auto ideal = hw::make_backend("ideal");
  ideal->prepare(wb.trained.model);

  exp::TablePrinter table({"crossbar", "attack", "mode", "eps", "clean",
                           "adv", "AL"});
  for (int64_t size : {16, 32}) {
    PreparedBackend mapped = map_backend(wb.trained.model, size);
    const auto fe = exp::fgsm_epsilons();
    const auto pe = exp::pgd_epsilons();
    add_mode_curves(table, "Cross" + std::to_string(size), *ideal,
                    mapped.hw(), wb.eval_set, attacks::AttackKind::kFgsm, fe);
    add_mode_curves(table, "Cross" + std::to_string(size), *ideal,
                    mapped.hw(), wb.eval_set, attacks::AttackKind::kPgd, pe);
    std::printf("[bench] %s\n",
                mapped.backend->energy_report().summary().c_str());
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/" + figure_name + ".csv");
  std::printf(
      "\nPaper shape check: SH and HH ALs sit well below Attack-SW at the "
      "same eps\n(paper: ~10-20%% lower), for both FGSM and PGD.\n");
}

}  // namespace rhw::bench
