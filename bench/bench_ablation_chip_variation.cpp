// Ablation: chip-to-chip reproducibility of the crossbar defense — thin
// wrapper over the "ablation_chip_variation" experiment preset, equivalently
// `rhw_run ablation_chip_variation`. Each virtual chip is an xbar arm with
// its own variation seed; add more with
// backends+=chip5=xbar:size=32,seed=<s> modes+=chip5=ideal/chip5.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"ablation_chip_variation"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
