// Ablation: chip-to-chip reproducibility of the crossbar defense.
//
// Process variation is a per-chip die roll: each fabricated crossbar chip is
// a different sample of the sigma/mu = 10% conductance distribution. This
// bench maps the same trained model onto N virtual chips (variation seeds)
// and reports the spread of clean accuracy and AL — whether the paper's
// robustness claim holds chip to chip or only on average.
#include "core/stats.hpp"
#include "bench_xbar_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Ablation: chip-to-chip variation",
                "Same network, same crossbar spec, N variation seeds "
                "(= N fabricated chips).");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");

  constexpr int kChips = 5;
  const float eps = 0.1f;
  exp::TablePrinter table({"chip", "clean %", "SH adv %", "SH AL"});
  RunningStats clean_stats, al_stats;
  for (int chip = 0; chip < kChips; ++chip) {
    models::Model mapped =
        bench::map_model(wb.trained.model, 32, 20e3,
                         0xC41B + static_cast<uint64_t>(chip) * 7919);
    attacks::AdvEvalConfig cfg;
    cfg.attack = "fgsm";
    cfg.epsilon = eps;
    const auto res = attacks::evaluate_attack(*wb.trained.model.net,
                                              *mapped.net, wb.eval_set, cfg);
    table.add_row({std::to_string(chip), exp::fmt(res.clean_acc, 2),
                   exp::fmt(res.adv_acc, 2),
                   exp::fmt(res.adversarial_loss(), 2)});
    clean_stats.push(res.clean_acc);
    al_stats.push(res.adversarial_loss());
  }
  // Software reference.
  attacks::AdvEvalConfig cfg;
  cfg.attack = "fgsm";
  cfg.epsilon = eps;
  const auto sw = attacks::evaluate_attack(*wb.trained.model.net,
                                           *wb.trained.model.net, wb.eval_set,
                                           cfg);
  table.add_row({"software", exp::fmt(sw.clean_acc, 2),
                 exp::fmt(sw.adv_acc, 2), exp::fmt(sw.adversarial_loss(), 2)});
  table.print();
  table.write_csv(exp::bench_out_dir() + "/ablation_chip_variation.csv");
  std::printf(
      "\nacross %d chips @ FGSM eps=%.2f: clean %.2f +- %.2f %%, AL %.2f +- "
      "%.2f %% (software AL %.2f)\n"
      "Paper shape check: every chip's AL should sit below the software AL — "
      "the\ndefense is a property of the technology, not of one lucky die.\n",
      kChips, eps, clean_stats.mean, clean_stats.stddev(), al_stats.mean,
      al_stats.stddev(), sw.adversarial_loss());
  return 0;
}
