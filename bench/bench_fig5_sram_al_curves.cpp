// Fig. 5: Adversarial Loss vs FGSM strength (eps 0.05..0.3) for VGG19 and
// ResNet18 on both datasets, baseline vs bit-error-noise-injected models.
// Includes the paper's noise-target ablation (activations vs weights) when
// run with --noise-target=weights.
//
// Each (arch, dataset) panel is one SweepEngine grid: the Fig. 4 methodology
// runs (or loads its cache) once, the selected configuration is registered
// as a backend key ("sram_selected" / "sram_weight_noise") referenced by
// spec string, and the Baseline/BitErrorNoise x eps cells evaluate
// concurrently with identical-to-serial results (RHW_SWEEP_VERIFY=1 checks).
#include <cstring>

#include "bench_sram_tables.hpp"
#include "exp/ascii_plot.hpp"
#include "hw/sram_backend.hpp"

using namespace rhw;

namespace {

// The weight-noise ablation as a proper backend: prepare() corrupts the
// weight layers feeding the selected sites, as if the weight memories were
// read through erroneous 6T cells. Registered under "sram_weight_noise" so
// the grid references it by spec string; replicate() returns a fresh copy
// whose (deterministic) prepare reproduces the corruption bit-for-bit.
class WeightNoiseBackend final : public hw::HardwareBackend {
 public:
  explicit WeightNoiseBackend(std::vector<sram::SiteChoice> selected)
      : selected_(std::move(selected)) {}

  std::string name() const override { return "sram_weight_noise"; }

  hw::BackendPtr replicate() const override {
    return std::make_unique<WeightNoiseBackend>(selected_);
  }

 protected:
  void do_prepare(nn::Module& net, const std::vector<models::ActivationSite>&,
                  const data::Dataset*) override {
    auto layers = nn::collect_weight_layers(net);
    for (size_t k = 0; k < selected_.size() && k < layers.size(); ++k) {
      sram::SramNoiseConfig nc;
      nc.word = selected_[k].word;
      nc.vdd = 0.68;
      sram::corrupt_layer_weights(*layers[k], nc);
    }
  }

 private:
  std::vector<sram::SiteChoice> selected_;
};

void run_arch_dataset(const std::string& arch, const std::string& dataset,
                      bool noise_on_weights, exp::TablePrinter& table) {
  bench::Workbench wb = bench::load_workbench(arch, dataset);
  auto selection = bench::run_methodology(wb.trained.model, wb.data.test, arch,
                                          dataset);

  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  grid.backends.push_back({"ideal", "ideal"});
  if (noise_on_weights) {
    // Ablation: the same hybrid configurations on the *weight* memories of
    // the layers feeding each selected site (paper: worse than activations).
    hw::BackendRegistry::instance().add(
        "sram_weight_noise",
        [selected = selection.selected](const hw::BackendOptions& opts) {
          core::OptionReader("backend", "sram_weight_noise", opts).finish();
          return std::make_unique<WeightNoiseBackend>(selected);
        });
    grid.backends.push_back({"noisy", "sram_weight_noise"});
  } else {
    // The methodology's selected sites, installed by an SramBackend with an
    // explicit selection (no calibration re-run per replica).
    bench::register_selected_sram_backend(selection.selected);
    grid.backends.push_back({"noisy", "sram_selected:vdd=0.68"});
  }
  // Attack gradients come from the clean model (noise never in gradients).
  grid.modes.push_back({"Baseline", "ideal", "ideal"});
  grid.modes.push_back({"BitErrorNoise", "ideal", "noisy"});
  grid.attacks.push_back({"fgsm", exp::fgsm_epsilons()});

  exp::SweepEngine engine(bench::sweep_options());
  const exp::SweepResult result = engine.run(grid);
  const std::string tag = std::string(noise_on_weights ? "fig5w_" : "fig5_") +
                          arch + "_" + dataset;
  bench::finish_sweep(grid, result, tag);

  const auto eps = exp::fgsm_epsilons();
  const auto base_curve = result.curve("Baseline", "fgsm");
  const auto noisy_curve = result.curve("BitErrorNoise", "fgsm");

  std::vector<exp::Series> panel(2);
  panel[0].label = "Baseline";
  panel[1].label = "BitErrorNoise";
  for (size_t i = 0; i < eps.size(); ++i) {
    table.add_row({arch, dataset, exp::fmt(eps[i], 2),
                   exp::fmt(base_curve.points[i].al, 2),
                   exp::fmt(noisy_curve.points[i].al, 2),
                   exp::fmt(base_curve.points[i].al -
                            noisy_curve.points[i].al, 2),
                   exp::fmt(noisy_curve.points[i].clean_acc, 2),
                   exp::fmt(noisy_curve.points[i].adv_acc, 2)});
    panel[0].x.push_back(eps[i]);
    panel[0].y.push_back(base_curve.points[i].al);
    panel[1].x.push_back(eps[i]);
    panel[1].y.push_back(noisy_curve.points[i].al);
  }
  exp::PlotOptions opt;
  opt.title = arch + " / " + dataset + " - FGSM (AL vs eps)";
  opt.y_min = 0;
  opt.y_max = 100;
  std::printf("%s\n", exp::render_ascii_plot(panel, opt).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool noise_on_weights = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--noise-target=weights") == 0) {
      noise_on_weights = true;
    }
  }
  bench::banner(
      "Fig. 5: AL vs FGSM epsilon with hybrid-memory bit-error noise",
      noise_on_weights
          ? "(ablation: noise injected into weight memories instead of "
            "activation memories)"
          : "AL = clean - adversarial accuracy (%); lower is more robust. "
            "Baseline = software model, BitErrorNoise = selected layers at "
            "Vdd 0.68 V.");

  exp::TablePrinter table({"network", "dataset", "eps", "AL baseline",
                           "AL bit-error", "AL reduction", "clean (noisy)",
                           "adv (noisy)"});
  for (const std::string arch : {"vgg19", "resnet18"}) {
    for (const std::string dataset : {"synth-c10", "synth-c100"}) {
      run_arch_dataset(arch, dataset, noise_on_weights, table);
    }
  }
  table.print();
  table.write_csv(exp::bench_out_dir() +
                  (noise_on_weights ? "/fig5_al_curves_weights.csv"
                                    : "/fig5_al_curves.csv"));
  std::printf(
      "\nPaper shape check: the bit-error column should sit below the "
      "baseline column\n(positive 'AL reduction'), with VGG19 showing lower "
      "overall AL than ResNet18.\n");
  return 0;
}
