// Fig. 5: thin wrapper over the "fig5" experiment preset (the weight-noise
// ablation rides on "fig5w"). The grid, methodology setup and rendering all
// live in exp::ExperimentRegistry — equivalently: `rhw_run fig5`.
#include <cstring>
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"fig5"};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--noise-target=weights") == 0) {
      args[0] = "fig5w";
    } else {
      args.emplace_back(argv[i]);
    }
  }
  return rhw::exp::rhw_run_main(args);
}
