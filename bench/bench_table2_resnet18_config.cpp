// Table II: layer-wise hybrid activation-memory configurations for ResNet18
// on synth-c10 and synth-c100 ('S' marks shortcut memories).
#include "bench_sram_tables.hpp"

int main() {
  rhw::bench::print_config_table("resnet18", "table2_resnet18");
  std::printf(
      "Paper shape check: as in Table I, early layers dominate; ResNet18\n"
      "tolerates a somewhat larger clean-accuracy deviation (paper: 6.14%% /"
      " 7.1%%).\n");
  return 0;
}
