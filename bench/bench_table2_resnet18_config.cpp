// Table II: thin wrapper over the "table2" experiment preset — equivalently:
// `rhw_run table2`. Extra arguments pass through as overrides.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"table2"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
