// Microbenchmarks (google-benchmark): the kernels behind the experiment
// harness, plus the exact-vs-approximate crossbar solver ablation.
//
// The kernel-bound families (BM_Gemm*, BM_ConvForward, BM_SmoothVotes*) are
// registered once per compute engine (core/engine_registry.hpp), so
// BENCH_micro.json records each engine's perf trajectory side by side —
// "BM_Gemm/simd/256" vs "BM_Gemm/blocked/256" and so on.
//
// Unless the caller passes its own --benchmark_out, results are also written
// as JSON to BENCH_micro.json so successive PRs accumulate a machine-readable
// perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine_registry.hpp"
#include "core/gemm.hpp"
#include "core/gemm_simd.hpp"
#include "core/im2col.hpp"
#include "core/rng.hpp"
#include "defenses/input_transforms.hpp"
#include "defenses/smoothing.hpp"
#include "hw/registry.hpp"
#include "models/zoo.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "sram/bit_error_injector.hpp"
#include "xbar/crossbar_array.hpp"
#include "xbar/mna_solver.hpp"
#include "xbar/nonideal.hpp"
#include "xbar/tiled_matrix.hpp"

namespace {

using namespace rhw;

void BM_Gemm(benchmark::State& state, const char* engine_spec) {
  core::EngineScope scope(engine_spec);
  const int64_t n = state.range(0);
  RandomEngine rng(1);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a);
  for (auto& v : a) v = rng.uniform(-1.f, 1.f);
  for (auto& v : b) v = rng.uniform(-1.f, 1.f);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.f, a.data(), n, b.data(), n, 0.f, c.data(),
         n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK_CAPTURE(BM_Gemm, naive, "naive")->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_Gemm, blocked, "blocked")->Arg(64)->Arg(128)->Arg(256);
BENCHMARK_CAPTURE(BM_Gemm, simd, "simd")->Arg(64)->Arg(128)->Arg(256);

// The ISSUE-6 acceptance shape: the im2col GEMM of VGG-8's largest conv at
// full width (out_c=256, col_rows=256*3*3) over a fused batch of 32 samples
// of 8x8 outputs — [256 x 2304] x [2304 x 2048]. The bar: simd >= 3x blocked
// here on an AVX2 host. naive is deliberately not registered on this shape
// (the double-accumulator reference is an order of magnitude slower and
// exists for parity checking, not perf tracking).
void BM_GemmConvVgg8(benchmark::State& state, const char* engine_spec) {
  core::EngineScope scope(engine_spec);
  constexpr int64_t kM = 256, kK = 2304, kN = 32 * 8 * 8;
  RandomEngine rng(13);
  std::vector<float> a(static_cast<size_t>(kM * kK));
  std::vector<float> b(static_cast<size_t>(kK * kN));
  std::vector<float> c(static_cast<size_t>(kM * kN));
  for (auto& v : a) v = rng.uniform(-1.f, 1.f);
  for (auto& v : b) v = rng.uniform(-1.f, 1.f);
  for (auto _ : state) {
    gemm(false, false, kM, kN, kK, 1.f, a.data(), kK, b.data(), kN, 0.f,
         c.data(), kN);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kM * kN * kK);
}
BENCHMARK_CAPTURE(BM_GemmConvVgg8, blocked, "blocked")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_GemmConvVgg8, simd, "simd")
    ->Unit(benchmark::kMillisecond);

void BM_ConvForward(benchmark::State& state, const char* engine_spec) {
  core::EngineScope scope(engine_spec);
  const int64_t channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3);
  RandomEngine rng(2);
  nn::kaiming_init(conv, rng);
  const Tensor x = Tensor::randn({8, channels, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK_CAPTURE(BM_ConvForward, naive, "naive")->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_ConvForward, blocked, "blocked")->Arg(16)->Arg(32);
BENCHMARK_CAPTURE(BM_ConvForward, simd, "simd")->Arg(16)->Arg(32);

void BM_Im2col(benchmark::State& state) {
  ConvGeom g{16, 32, 32, 3, 3, 1, 1};
  RandomEngine rng(3);
  std::vector<float> in(static_cast<size_t>(g.in_c * g.in_h * g.in_w));
  for (auto& v : in) v = rng.uniform(0.f, 1.f);
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    im2col(g, in.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_BitErrorInjection(benchmark::State& state) {
  sram::HybridWordConfig word;
  word.num_8t = 4;
  sram::BitErrorInjector inj(word, {}, 0.68);
  RandomEngine rng(4);
  std::vector<uint8_t> codes(static_cast<size_t>(state.range(0)));
  for (auto& c : codes) c = static_cast<uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    inj.corrupt_codes(codes, rng);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitErrorInjection)->Arg(1 << 14)->Arg(1 << 18);

// Ablation: exact MNA grid solve vs the fast series-resistance model.
void BM_XbarExactMna(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(5);
  std::vector<double> g(static_cast<size_t>(n * n));
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  for (auto _ : state) {
    xbar::MnaSolver solver(g, spec);
    auto eff = solver.effective_conductance();
    benchmark::DoNotOptimize(eff.data());
  }
}
BENCHMARK(BM_XbarExactMna)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_XbarFastApprox(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(6);
  std::vector<double> g(static_cast<size_t>(n * n));
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  for (auto _ : state) {
    auto eff = xbar::nonideal_conductances(g, spec);
    benchmark::DoNotOptimize(eff.data());
  }
}
BENCHMARK(BM_XbarFastApprox)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CrossbarProgramAndRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(7);
  std::vector<float> w(static_cast<size_t>(n * n));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  for (auto _ : state) {
    RandomEngine var(8);
    xbar::CrossbarArray arr(w.data(), n, n, n, spec,
                            xbar::CircuitModel::kFastApprox, &var);
    benchmark::DoNotOptimize(arr.effective_weights().data());
  }
}
BENCHMARK(BM_CrossbarProgramAndRead)->Arg(16)->Arg(32)->Arg(64);

// Tile-level inference on a VGG8-sized layer (largest conv at full width:
// 256 outputs x 2304 inputs) over 64x64 tiles, batch 100 — serial per-vector
// matvec vs the pooled batched matmul XbarBackend executes. The batched path
// must be >= 3x faster: samples interleave their accumulation chains instead
// of serializing on one, and batch blocks spread across the thread pool.
struct XbarLayerBench {
  static constexpr int64_t kOut = 256;
  static constexpr int64_t kIn = 2304;
  static constexpr int64_t kBatch = 100;

  xbar::TiledMatrix tiles;
  std::vector<float> x;  // [kBatch x kIn]
  std::vector<float> y;  // [kBatch x kOut]

  static XbarLayerBench& instance() {
    static XbarLayerBench bench;
    return bench;
  }

 private:
  XbarLayerBench() {
    RandomEngine rng(9);
    std::vector<float> w(static_cast<size_t>(kOut * kIn));
    for (auto& v : w) v = rng.uniform(-1.f, 1.f);
    xbar::CrossbarSpec spec;
    spec.rows = 64;
    spec.cols = 64;
    RandomEngine var(10);
    tiles = xbar::TiledMatrix(w.data(), kOut, kIn, kIn, spec,
                              xbar::CircuitModel::kFastApprox, &var);
    x.resize(static_cast<size_t>(kBatch * kIn));
    for (auto& v : x) v = rng.uniform(0.f, 1.f);
    y.resize(static_cast<size_t>(kBatch * kOut));
  }
};

void BM_XbarMatvecLoop(benchmark::State& state) {
  auto& bench = XbarLayerBench::instance();
  std::vector<float> sample(static_cast<size_t>(bench.kIn));
  for (auto _ : state) {
    for (int64_t b = 0; b < bench.kBatch; ++b) {
      std::copy(bench.x.begin() + b * bench.kIn,
                bench.x.begin() + (b + 1) * bench.kIn, sample.begin());
      const auto out = bench.tiles.matvec(sample);
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * bench.kBatch);
}
BENCHMARK(BM_XbarMatvecLoop)->Unit(benchmark::kMillisecond);

void BM_XbarBatchedMatmul(benchmark::State& state) {
  auto& bench = XbarLayerBench::instance();
  for (auto _ : state) {
    bench.tiles.matmul(bench.x.data(), bench.kBatch, bench.y.data());
    benchmark::DoNotOptimize(bench.y.data());
  }
  state.SetItemsProcessed(state.iterations() * bench.kBatch);
}
BENCHMARK(BM_XbarBatchedMatmul)->Unit(benchmark::kMillisecond);

// Randomized-smoothing vote cost on a crossbar-mapped VGG8: the N noisy
// copies used to run as N sequential inner forwards; SmoothedModule::votes
// now tiles them into one large batch so the substrate's batched execution
// (parallel_for over the batch dimension, one pool dispatch instead of N)
// amortizes across copies. The Sequential/Batched pair records that ratio
// per PR; the win scales with hardware threads relative to the per-vote
// batch (kBatch of 8 under-fills a many-core pool 16 times in the
// sequential formulation, once when batched) and is ~parity on a
// single-core host.
struct SmoothVotesBench {
  static constexpr int kSamples = 16;
  static constexpr int64_t kBatch = 8;

  models::Model model;
  rhw::hw::BackendPtr backend;
  std::unique_ptr<defenses::SmoothedModule> smoothed;
  Tensor x;

  static SmoothVotesBench& instance() {
    static SmoothVotesBench bench;
    return bench;
  }

 private:
  SmoothVotesBench() : model(models::build_model("vgg8", 10, 0.125f, 16)) {
    model.net->set_training(false);
    backend = rhw::hw::make_backend("xbar:size=32");
    backend->prepare(model);
    defenses::SmoothConfig cfg;
    cfg.sigma = 0.1f;
    cfg.samples = kSamples;
    smoothed = std::make_unique<defenses::SmoothedModule>(backend->module(),
                                                          cfg);
    RandomEngine rng(11);
    x = Tensor::rand_uniform({kBatch, 3, 16, 16}, rng);
  }
};

void BM_SmoothVotesSequential(benchmark::State& state,
                              const char* engine_spec) {
  core::EngineScope scope(engine_spec);
  auto& bench = SmoothVotesBench::instance();
  RandomEngine noise(12);
  for (auto _ : state) {
    Tensor counts;
    for (int s = 0; s < bench.kSamples; ++s) {
      Tensor noisy = bench.x;
      defenses::add_gaussian_noise(noisy, 0.1f, 0.f, 1.f, noise);
      const Tensor logits = bench.backend->module().forward(noisy);
      if (counts.empty()) counts = Tensor::zeros({bench.kBatch, logits.dim(1)});
      const auto preds = logits.argmax_rows();
      for (int64_t i = 0; i < bench.kBatch; ++i) counts.at(i, preds[i]) += 1.f;
    }
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * bench.kBatch * bench.kSamples);
}
BENCHMARK_CAPTURE(BM_SmoothVotesSequential, naive, "naive")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SmoothVotesSequential, blocked, "blocked")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SmoothVotesSequential, simd, "simd")
    ->Unit(benchmark::kMillisecond);

void BM_SmoothVotesBatched(benchmark::State& state, const char* engine_spec) {
  core::EngineScope scope(engine_spec);
  auto& bench = SmoothVotesBench::instance();
  for (auto _ : state) {
    Tensor counts = bench.smoothed->votes(bench.x);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * bench.kBatch * bench.kSamples);
}
BENCHMARK_CAPTURE(BM_SmoothVotesBatched, naive, "naive")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SmoothVotesBatched, blocked, "blocked")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SmoothVotesBatched, simd, "simd")
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN, plus a default JSON artifact (BENCH_micro.json) when the
// caller didn't redirect the output themselves.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false, has_fmt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_out_format=", 23) == 0) {
      has_fmt = true;
    }
  }
  // Inject the default artifact only when the caller controls neither flag:
  // pairing our .json filename with a caller-chosen format would write a
  // mislabeled file.
  if (!has_out && !has_fmt) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  // Recorded in the JSON context block: whether the simd engine ran its
  // runtime-dispatched fast path or the portable baseline on this host.
  ::benchmark::AddCustomContext(
      "simd_fast_path",
      rhw::core::SimdEngine::fast_path() ? "avx2/neon" : "portable");
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
