// Microbenchmarks (google-benchmark): the kernels behind the experiment
// harness, plus the exact-vs-approximate crossbar solver ablation.
#include <benchmark/benchmark.h>

#include "core/gemm.hpp"
#include "core/im2col.hpp"
#include "core/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "sram/bit_error_injector.hpp"
#include "xbar/crossbar_array.hpp"
#include "xbar/mna_solver.hpp"
#include "xbar/nonideal.hpp"

namespace {

using namespace rhw;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  RandomEngine rng(1);
  std::vector<float> a(static_cast<size_t>(n * n)), b(a), c(a);
  for (auto& v : a) v = rng.uniform(-1.f, 1.f);
  for (auto& v : b) v = rng.uniform(-1.f, 1.f);
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.f, a.data(), n, b.data(), n, 0.f, c.data(),
         n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  const int64_t channels = state.range(0);
  nn::Conv2d conv(channels, channels, 3);
  RandomEngine rng(2);
  nn::kaiming_init(conv, rng);
  const Tensor x = Tensor::randn({8, channels, 32, 32}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(32);

void BM_Im2col(benchmark::State& state) {
  ConvGeom g{16, 32, 32, 3, 3, 1, 1};
  RandomEngine rng(3);
  std::vector<float> in(static_cast<size_t>(g.in_c * g.in_h * g.in_w));
  for (auto& v : in) v = rng.uniform(0.f, 1.f);
  std::vector<float> cols(static_cast<size_t>(g.col_rows() * g.col_cols()));
  for (auto _ : state) {
    im2col(g, in.data(), cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col);

void BM_BitErrorInjection(benchmark::State& state) {
  sram::HybridWordConfig word;
  word.num_8t = 4;
  sram::BitErrorInjector inj(word, {}, 0.68);
  RandomEngine rng(4);
  std::vector<uint8_t> codes(static_cast<size_t>(state.range(0)));
  for (auto& c : codes) c = static_cast<uint8_t>(rng.next_below(256));
  for (auto _ : state) {
    inj.corrupt_codes(codes, rng);
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitErrorInjection)->Arg(1 << 14)->Arg(1 << 18);

// Ablation: exact MNA grid solve vs the fast series-resistance model.
void BM_XbarExactMna(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(5);
  std::vector<double> g(static_cast<size_t>(n * n));
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  for (auto _ : state) {
    xbar::MnaSolver solver(g, spec);
    auto eff = solver.effective_conductance();
    benchmark::DoNotOptimize(eff.data());
  }
}
BENCHMARK(BM_XbarExactMna)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_XbarFastApprox(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(6);
  std::vector<double> g(static_cast<size_t>(n * n));
  for (auto& v : g) {
    v = spec.g_min() + (spec.g_max() - spec.g_min()) * rng.next_double();
  }
  for (auto _ : state) {
    auto eff = xbar::nonideal_conductances(g, spec);
    benchmark::DoNotOptimize(eff.data());
  }
}
BENCHMARK(BM_XbarFastApprox)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CrossbarProgramAndRead(benchmark::State& state) {
  const int64_t n = state.range(0);
  xbar::CrossbarSpec spec;
  spec.rows = n;
  spec.cols = n;
  RandomEngine rng(7);
  std::vector<float> w(static_cast<size_t>(n * n));
  for (auto& v : w) v = rng.uniform(-1.f, 1.f);
  for (auto _ : state) {
    RandomEngine var(8);
    xbar::CrossbarArray arr(w.data(), n, n, n, spec,
                            xbar::CircuitModel::kFastApprox, &var);
    benchmark::DoNotOptimize(arr.effective_weights().data());
  }
}
BENCHMARK(BM_CrossbarProgramAndRead)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
