// Fig. 8(a): thin wrapper over the "fig8a" experiment preset — equivalently:
// `rhw_run fig8a`. Extra arguments pass through as overrides.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"fig8a"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
