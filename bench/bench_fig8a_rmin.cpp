// Fig. 8(a): ALs for SH and HH PGD attacks on a VGG8/synth-c10 model mapped
// to 32x32 crossbars for RMIN = 10 kOhm vs 20 kOhm at constant ON/OFF = 10.
#include "bench_xbar_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Fig. 8(a): effect of RMIN on crossbar robustness",
                "Smaller RMIN -> lower effective resistance -> parasitics "
                "dominate more -> more intrinsic noise -> lower AL.");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");
  auto ideal = hw::make_backend("ideal");
  ideal->prepare(wb.trained.model);

  const std::vector<float> eps{2.f / 255.f, 8.f / 255.f, 32.f / 255.f};
  exp::TablePrinter table({"RMIN", "mode", "eps=2/255", "eps=8/255",
                           "eps=32/255"});

  for (double r_min : {10e3, 20e3}) {
    bench::PreparedBackend mapped = bench::map_backend(wb.trained.model, 32,
                                                       r_min);
    struct ModeSpec {
      const char* name;
      hw::HardwareBackend* grad_hw;
    };
    const ModeSpec modes[] = {{"SH", ideal.get()},
                              {"HH", mapped.backend.get()}};
    for (const auto& mode : modes) {
      const auto curve = exp::al_curve(mode.name, *mode.grad_hw, mapped.hw(),
                                       wb.eval_set, attacks::AttackKind::kPgd,
                                       eps);
      table.add_row({exp::fmt(r_min / 1e3, 0) + " kOhm", mode.name,
                     exp::fmt(curve.points[0].al, 2),
                     exp::fmt(curve.points[1].al, 2),
                     exp::fmt(curve.points[2].al, 2)});
    }
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig8a_rmin.csv");
  std::printf(
      "\nPaper shape check: ALs for RMIN = 10 kOhm rows should be lower than "
      "the\ncorresponding RMIN = 20 kOhm rows.\n");
  return 0;
}
