// Fig. 8(a): ALs for SH and HH PGD attacks on a VGG8/synth-c10 model mapped
// to 32x32 crossbars for RMIN = 10 kOhm vs 20 kOhm at constant ON/OFF = 10.
#include "bench_xbar_common.hpp"

using namespace rhw;

int main() {
  bench::banner("Fig. 8(a): effect of RMIN on crossbar robustness",
                "Smaller RMIN -> lower effective resistance -> parasitics "
                "dominate more -> more intrinsic noise -> lower AL.");
  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");

  const std::vector<float> eps{2.f / 255.f, 8.f / 255.f, 32.f / 255.f};
  const double r_mins[] = {10e3, 20e3};

  exp::SweepGrid grid;
  grid.model = &wb.trained.model;
  grid.eval_set = &wb.eval_set;
  grid.backends.push_back({"ideal", "ideal"});
  for (const double r_min : r_mins) {
    const std::string key = "r" + std::to_string(static_cast<int>(r_min / 1e3));
    grid.backends.push_back({key, bench::xbar_spec(32, r_min)});
    grid.modes.push_back({key + "/SH", "ideal", key});
    grid.modes.push_back({key + "/HH", key, key});
  }
  grid.attacks.push_back({"pgd", eps});

  exp::SweepEngine engine(bench::sweep_options());
  const exp::SweepResult result = engine.run(grid);
  bench::finish_sweep(grid, result, "fig8a_rmin");

  exp::TablePrinter table({"RMIN", "mode", "eps=2/255", "eps=8/255",
                           "eps=32/255"});
  for (const double r_min : r_mins) {
    const std::string key = "r" + std::to_string(static_cast<int>(r_min / 1e3));
    bench::print_map_report(engine, key, wb.trained.model.name, 32, r_min);
    for (const char* mode : {"SH", "HH"}) {
      const auto curve = result.curve(key + "/" + mode, "pgd");
      table.add_row({exp::fmt(r_min / 1e3, 0) + " kOhm", mode,
                     exp::fmt(curve.points[0].al, 2),
                     exp::fmt(curve.points[1].al, 2),
                     exp::fmt(curve.points[2].al, 2)});
    }
  }
  table.print();
  table.write_csv(exp::bench_out_dir() + "/fig8a_rmin.csv");
  std::printf(
      "\nPaper shape check: ALs for RMIN = 10 kOhm rows should be lower than "
      "the\ncorresponding RMIN = 20 kOhm rows.\n");
  return 0;
}
