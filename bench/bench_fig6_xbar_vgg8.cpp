// Fig. 6: AL vs eps for Attack-SW / SH / HH (FGSM and PGD) on VGG8 with
// synth-c10, crossbar sizes 16x16 and 32x32.
#include "bench_xbar_common.hpp"

int main() {
  rhw::bench::run_xbar_figure("vgg8", "synth-c10", "fig6_vgg8_c10");
  return 0;
}
