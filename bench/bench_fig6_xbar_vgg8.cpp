// Fig. 6: thin wrapper over the "fig6" experiment preset — equivalently:
// `rhw_run fig6`. Extra arguments pass through as overrides.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"fig6"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
