// Shared setup for the standalone ablation benches (the figure/table benches
// are thin wrappers over exp::ExperimentRegistry presets and use none of
// this — see tools/rhw_run.cpp).
#pragma once

#include <cstdio>
#include <string>

#include "data/synth_cifar.hpp"
#include "exp/table_printer.hpp"
#include "models/zoo.hpp"

namespace rhw::bench {

struct Workbench {
  data::SynthCifar data;
  models::TrainedModel trained;
  data::Dataset eval_set;  // evaluation subset (RHW_EVAL_COUNT-sized)
};

inline Workbench load_workbench(const std::string& arch,
                                const std::string& dataset,
                                int64_t default_eval = 256) {
  Workbench wb;
  wb.data = data::make_dataset_by_name(dataset);
  wb.trained = models::get_trained(arch, dataset, wb.data);
  wb.eval_set = wb.data.test.head(exp::eval_count(default_eval));
  return wb;
}

// Deep copy of a trained model (weights + BN statistics), eval mode. Zoo
// models are built with the default width/input size, so the defaults match.
inline models::Model clone_model(const models::Model& src) {
  return models::clone_model(src);
}

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
  std::fflush(stdout);
}

}  // namespace rhw::bench
