// Shared setup for the per-table/figure benchmark harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "data/synth_cifar.hpp"
#include "exp/al_runner.hpp"
#include "exp/table_printer.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

namespace rhw::bench {

struct Workbench {
  data::SynthCifar data;
  models::TrainedModel trained;
  data::Dataset eval_set;  // evaluation subset (RHW_EVAL_COUNT-sized)
};

inline Workbench load_workbench(const std::string& arch,
                                const std::string& dataset,
                                int64_t default_eval = 256) {
  Workbench wb;
  wb.data = data::make_dataset_by_name(dataset);
  wb.trained = models::get_trained(arch, dataset, wb.data);
  wb.eval_set = wb.data.test.head(exp::eval_count(default_eval));
  return wb;
}

// Deep copy of a trained model (weights + BN statistics), eval mode.
inline models::Model clone_model(const models::Model& src) {
  models::Model copy = models::build_model(src.name, src.num_classes);
  auto& original = const_cast<models::Model&>(src);
  nn::load_state_dict(*copy.net, nn::state_dict(*original.net));
  copy.net->set_training(false);
  return copy;
}

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
  std::fflush(stdout);
}

}  // namespace rhw::bench
