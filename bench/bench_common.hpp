// Shared setup for the per-table/figure benchmark harnesses.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/synth_cifar.hpp"
#include "exp/al_runner.hpp"
#include "exp/sweep.hpp"
#include "exp/table_printer.hpp"
#include "models/zoo.hpp"
#include "nn/model_io.hpp"

namespace rhw::bench {

struct Workbench {
  data::SynthCifar data;
  models::TrainedModel trained;
  data::Dataset eval_set;  // evaluation subset (RHW_EVAL_COUNT-sized)
};

inline Workbench load_workbench(const std::string& arch,
                                const std::string& dataset,
                                int64_t default_eval = 256) {
  Workbench wb;
  wb.data = data::make_dataset_by_name(dataset);
  wb.trained = models::get_trained(arch, dataset, wb.data);
  wb.eval_set = wb.data.test.head(exp::eval_count(default_eval));
  return wb;
}

// Deep copy of a trained model (weights + BN statistics), eval mode. Zoo
// models are built with the default width/input size, so the defaults match.
inline models::Model clone_model(const models::Model& src) {
  return models::clone_model(src);
}

inline void banner(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n%s\n\n", title.c_str(), subtitle.c_str());
  std::fflush(stdout);
}

// Engine options shared by the figure/table benches: lane count from
// $RHW_SWEEP_THREADS (default: one lane per hardware thread).
inline exp::SweepEngine::Options sweep_options() {
  exp::SweepEngine::Options opt;
  opt.threads = exp::sweep_threads_env(0);
  return opt;
}

inline void report_sweep(const exp::SweepResult& result) {
  std::printf("[sweep] %zu cells (%d trial(s)) on %u lane(s) in %.2fs\n",
              result.cells.size(), result.trials, result.lanes,
              result.wall_seconds);
}

// The parity contract shared by verify_serial_parity and bench_sweep_smoke:
// per-cell results (and derived seeds) must match bitwise across lane counts.
// Returns the number of mismatching cells, reporting each on stderr.
inline size_t count_cell_mismatches(const exp::SweepResult& parallel,
                                    const exp::SweepResult& serial) {
  size_t mismatches = 0;
  for (size_t i = 0; i < parallel.cells.size(); ++i) {
    const auto& a = parallel.cells[i];
    const auto& b = serial.cells[i];
    if (a.seed != b.seed || a.clean_acc != b.clean_acc ||
        a.adv_acc != b.adv_acc) {
      ++mismatches;
      std::fprintf(stderr,
                   "[sweep-verify] MISMATCH cell %zu (mode %zu eps %.3f "
                   "trial %d): parallel %.10f/%.10f vs serial %.10f/%.10f\n",
                   i, a.mode, a.epsilon, a.trial, a.clean_acc, a.adv_acc,
                   b.clean_acc, b.adv_acc);
    }
  }
  return mismatches;
}

inline void report_parity(const exp::SweepResult& parallel,
                          const exp::SweepResult& serial) {
  std::printf(
      "[sweep-verify] OK: %zu cells bit-identical on %u lane(s) vs serial; "
      "speedup %.2fx (serial %.2fs / parallel %.2fs)\n",
      parallel.cells.size(), parallel.lanes,
      parallel.wall_seconds > 0 ? serial.wall_seconds / parallel.wall_seconds
                                : 0.0,
      serial.wall_seconds, parallel.wall_seconds);
}

// RHW_SWEEP_VERIFY=1: re-run the grid on a single lane and require
// bit-identical per-cell results — the engine's cross-thread determinism
// acceptance check. Reports the serial/parallel wall-clock ratio. Exits
// non-zero on any mismatch.
inline void verify_serial_parity(const exp::SweepGrid& grid,
                                 const exp::SweepResult& parallel) {
  const char* env = std::getenv("RHW_SWEEP_VERIFY");
  if (env == nullptr || *env == '\0' || *env == '0') return;
  exp::SweepEngine::Options opt;
  opt.threads = 1;
  exp::SweepEngine serial_engine(opt);
  const exp::SweepResult serial = serial_engine.run(grid);
  const size_t mismatches = count_cell_mismatches(parallel, serial);
  if (mismatches > 0) {
    std::fprintf(stderr, "[sweep-verify] FAILED: %zu mismatching cells\n",
                 mismatches);
    std::exit(1);
  }
  report_parity(parallel, serial);
}

// Shared epilogue for sweep-driven benches: timing line, serial-parity check
// (which exits non-zero on mismatch, so a failed run publishes no artifact),
// then the BENCH_<figure>.json artifact.
inline void finish_sweep(const exp::SweepGrid& grid,
                         const exp::SweepResult& result,
                         const std::string& figure) {
  report_sweep(result);
  verify_serial_parity(grid, result);
  result.write_json("BENCH_" + figure + ".json", figure);
}

}  // namespace rhw::bench
