// Serving bench: thin wrapper over the "serve_curve" experiment preset —
// equivalently: `rhw_run serve_curve`. Serves every arm at each offered
// rate through serve::Server (micro-batching, per-lane backend replicas)
// under deterministic open-loop Poisson load, and writes the
// latency-vs-offered-load curve to BENCH_serve.json (rhw-serve-v1,
// docs/SERVING.md). RHW_FAST=1 shrinks it to the CI pipeline.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args{"serve_curve"};
  args.insert(args.end(), argv + 1, argv + argc);
  return rhw::exp::rhw_run_main(args);
}
