// Ablation: noise-aware retraining (paper Sec. III-A: "Re-training the
// bit-error noise injected DNN with clean images can improve the CA of the
// network"). Reports clean accuracy and AL before/after fine-tuning with the
// noise hooks active.
#include "bench_common.hpp"
#include "sram/retrain.hpp"

using namespace rhw;

int main() {
  bench::banner("Ablation: noise-aware retraining",
                "Fine-tuning with the hybrid-memory noise active recovers "
                "the clean-accuracy deviation the noise causes, while "
                "keeping the robustness benefit.");

  bench::Workbench wb = bench::load_workbench("vgg8", "synth-c10");
  models::Model& model = wb.trained.model;

  // Aggressive configuration so the CA dent (and hence the recovery) is
  // clearly visible.
  std::vector<sram::SiteChoice> selection;
  for (size_t s = 0; s < 3 && s < model.sites.size(); ++s) {
    sram::SiteChoice c;
    c.site_index = s;
    c.site_label = model.sites[s].label;
    c.word.num_8t = 1;  // 7 error-prone bits
    selection.push_back(c);
  }
  const double vdd = 0.64;

  attacks::AdvEvalConfig acfg;
  acfg.epsilon = 0.1f;
  const auto sw = attacks::evaluate_attack(*model.net, *model.net, wb.eval_set,
                                           acfg);

  models::Model noisy = bench::clone_model(model);
  sram::apply_selection(noisy, selection, vdd);
  const auto before = attacks::evaluate_attack(*model.net, *noisy.net,
                                               wb.eval_set, acfg);

  sram::RetrainConfig rcfg;
  rcfg.epochs = 2;
  const auto retrain = sram::retrain_with_noise(noisy, wb.data, selection, vdd,
                                                rcfg);
  const auto after = attacks::evaluate_attack(*model.net, *noisy.net,
                                              wb.eval_set, acfg);

  exp::TablePrinter table({"model", "clean %", "adv % (FGSM 0.1)", "AL"});
  table.add_row({"software baseline", exp::fmt(sw.clean_acc, 2),
                 exp::fmt(sw.adv_acc, 2), exp::fmt(sw.adversarial_loss(), 2)});
  table.add_row({"noisy (1/7 @ 0.64V)", exp::fmt(before.clean_acc, 2),
                 exp::fmt(before.adv_acc, 2),
                 exp::fmt(before.adversarial_loss(), 2)});
  table.add_row({"noisy + retrained", exp::fmt(after.clean_acc, 2),
                 exp::fmt(after.adv_acc, 2),
                 exp::fmt(after.adversarial_loss(), 2)});
  table.print();
  table.write_csv(exp::bench_out_dir() + "/ablation_retrain.csv");
  std::printf(
      "\n(retrain measured on its own eval subset: %.2f%% -> %.2f%% clean)\n"
      "Paper shape check: retraining recovers most of the clean-accuracy "
      "deviation\nwithout giving back the AL reduction.\n",
      retrain.clean_acc_before, retrain.clean_acc_after);
  return 0;
}
