// Shared driver for Tables I and II: runs the Fig. 4 methodology on one
// architecture for both datasets and prints the paper-style layer-wise
// configuration table. Selections are cached under bench_out/ so Fig. 5 can
// reuse them. The selected configuration is then re-evaluated through the
// sweep engine (Baseline vs BitErrorNoise at the sweep epsilon) and written
// as a BENCH_table*.json artifact.
#pragma once

#include "bench_common.hpp"
#include "hw/sram_backend.hpp"
#include "sram/layer_selector.hpp"

namespace rhw::bench {

inline std::string selection_cache_path(const std::string& arch,
                                        const std::string& dataset) {
  return exp::bench_out_dir() + "/selection_" + arch + "_" + dataset + ".txt";
}

// Registers (or replaces) the "sram_selected" backend key: an SramBackend
// carrying an explicit precomputed site selection, so grids re-evaluating a
// methodology result reference it by spec string like any other hardware —
// the registry replaces the custom sweep binders this used to need. The
// only knob is vdd; the selection itself is baked into the factory.
inline void register_selected_sram_backend(
    const std::vector<sram::SiteChoice>& selected) {
  hw::BackendRegistry::instance().add(
      "sram_selected",
      [selected](const hw::BackendOptions& opts) -> hw::BackendPtr {
        auto reader = core::OptionReader("backend", "sram_selected", opts);
        hw::SramBackendConfig cfg;
        cfg.vdd = reader.number("vdd", 0.68);
        cfg.selection = selected;
        reader.finish();
        return std::make_unique<hw::SramBackend>(std::move(cfg));
      });
}

// Runs (or loads) the methodology for one arch/dataset pair.
inline sram::SelectionResult run_methodology(models::Model& model,
                                             const data::Dataset& test,
                                             const std::string& arch,
                                             const std::string& dataset) {
  const std::string cache = selection_cache_path(arch, dataset);
  sram::SelectionResult result;
  if (sram::load_selection(cache, &result) &&
      result.per_site_best.size() == model.sites.size()) {
    std::printf("[bench] loaded cached selection from %s\n", cache.c_str());
    return result;
  }
  sram::SelectorConfig cfg;
  cfg.eval_count = exp::eval_count(192);
  // Probe strength where the baseline attack is meaningful: the 100-class
  // models sit much closer to their decision boundaries, so the sweep uses a
  // gentler epsilon there (at 0.1 their baseline adversarial accuracy is
  // already ~0 and no configuration can clear the +5% bar).
  cfg.epsilon = model.num_classes > 50 ? 0.04f : 0.1f;
  result = sram::select_layers(model, test, cfg);
  sram::save_selection(cache, result);
  return result;
}

inline void print_config_table(const std::string& arch,
                               const std::string& table_name) {
  banner(table_name,
         "Layer-wise activation-memory configurations (8T/6T ratios) chosen "
         "by the Fig. 4 methodology at Vdd = 0.68 V; 'H' = homogeneous "
         "(no bit-error noise injected). CA = clean accuracy of the "
         "noise-injected DNN / deviation from the software baseline.");

  for (const std::string dataset : {"synth-c10", "synth-c100"}) {
    Workbench wb = load_workbench(arch, dataset);
    auto result = run_methodology(wb.trained.model, wb.data.test, arch,
                                  dataset);

    std::vector<std::string> headers{"dataset"};
    std::vector<std::string> row{dataset};
    for (const auto& site : wb.trained.model.sites) {
      headers.push_back(site.label);
      std::string cell = "H";
      for (const auto& sel : result.selected) {
        if (sel.site_label == site.label) cell = sel.word.ratio_label();
      }
      row.push_back(cell);
    }
    headers.push_back("VDD");
    row.push_back("0.68V");
    headers.push_back("CA/Deviation");
    row.push_back(exp::fmt(result.final_clean_acc, 2) + " / " +
                  exp::fmt(result.baseline_clean_acc - result.final_clean_acc,
                           2));
    exp::TablePrinter table(headers);
    table.add_row(row);
    table.print();
    table.write_csv(exp::bench_out_dir() + "/" + table_name + "_" + dataset +
                    ".csv");

    std::printf(
        "  baseline: clean %.2f%%  adv(FGSM eps=0.1) %.2f%%  |  with noise: "
        "adv %.2f%%  (selected %zu sites out of %zu; shortlist %zu)\n\n",
        result.baseline_clean_acc, result.baseline_adv_acc,
        result.final_adv_acc, result.selected.size(),
        wb.trained.model.sites.size(), result.shortlisted.size());

    // Sweep-engine cross-check: the selected configuration as a one-point
    // grid (Baseline vs BitErrorNoise at the sweep probe epsilon), evaluated
    // by the parallel scheduler and emitted as a JSON artifact.
    const float probe_eps =
        wb.trained.model.num_classes > 50 ? 0.04f : 0.1f;
    exp::SweepGrid grid;
    grid.model = &wb.trained.model;
    grid.eval_set = &wb.eval_set;
    grid.backends.push_back({"ideal", "ideal"});
    register_selected_sram_backend(result.selected);
    grid.backends.push_back({"noisy", "sram_selected:vdd=0.68"});
    grid.modes.push_back({"Baseline", "ideal", "ideal"});
    grid.modes.push_back({"BitErrorNoise", "ideal", "noisy"});
    grid.attacks.push_back({"fgsm", {probe_eps}});

    exp::SweepEngine engine(sweep_options());
    const exp::SweepResult sweep = engine.run(grid);
    const auto* base = sweep.find(0, 0, 0);
    const auto* noise = sweep.find(1, 0, 0);
    std::printf(
        "  [sweep] eval-set re-check (FGSM eps=%.2f): baseline clean %.2f%% "
        "adv %.2f%%  |  noisy clean %.2f%% adv %.2f%%  (AL %.2f -> %.2f)\n\n",
        probe_eps, base->clean.mean, base->adv.mean, noise->clean.mean,
        noise->adv.mean, base->al.mean, noise->al.mean);
    finish_sweep(grid, sweep, table_name + "_" + dataset);
  }
}

}  // namespace rhw::bench
