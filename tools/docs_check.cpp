// Documentation checker: fails CI on broken intra-repo markdown links and on
// stale registry spec strings in the docs.
//
// Scans README.md, ROADMAP.md and docs/*.md for
//   * markdown links [text](target): every non-http target must resolve to
//     an existing file/directory relative to the markdown file (anchors are
//     stripped);
//   * inline code spans that look like registry specs
//     (`key:opt=v,opt=v` / bare `key` that names a registered key): every
//     backend spec must parse through hw::BackendRegistry, every attack
//     spec through attacks::AttackRegistry, every defense spec through
//     defenses::DefenseRegistry, every engine spec through
//     core::EngineRegistry, every dataset spec through
//     data::DatasetRegistry, and every experiment preset through
//     exp::ExperimentRegistry — so a renamed knob, attack, defense,
//     engine, dataset or preset breaks the build, not a reader;
//   * inline `rhw_run <preset> [overrides...]` command spans: the preset
//     must resolve, every override token must apply, and the resulting
//     spec must validate against all the live registries — the override
//     cookbook in docs/EXPERIMENTS.md can never drift from the grammar.
//
// Spans with ellipses or placeholders ("sram:vdd=0.68,...", "eps=<f>") don't
// match the strict spec shape and are skipped; the docs keep exact,
// parseable example specs in their tables precisely so this check has
// teeth. A minimum-hit floor guards against the scanner silently matching
// nothing.
//
//   $ ./docs_check [repo_root]     # root defaults to RHW_SOURCE_DIR
#include <cstdio>
#include <filesystem>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "check_common.hpp"
#include "exp/experiment.hpp"
#include "exp/experiment_registry.hpp"

namespace fs = std::filesystem;

namespace {

using rhw::check::Failure;
using rhw::check::read_file;

// Intra-repo link targets: strip #fragment, skip external schemes and
// pure anchors.
void check_links(const fs::path& md, const std::string& text,
                 std::vector<Failure>& failures, size_t& checked) {
  static const std::regex link_re(R"(\[[^\]]*\]\(([^)\s]+)\))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), link_re);
       it != std::sregex_iterator(); ++it) {
    std::string target = (*it)[1].str();
    if (target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
        target.rfind("mailto:", 0) == 0) {
      continue;
    }
    const size_t hash = target.find('#');
    if (hash == 0) continue;  // in-page anchor
    if (hash != std::string::npos) target = target.substr(0, hash);
    if (target.empty()) continue;
    ++checked;
    const fs::path resolved = md.parent_path() / target;
    if (!fs::exists(resolved)) {
      failures.push_back({md.string(),
                          "broken link '" + target + "' (resolved to " +
                              resolved.lexically_normal().string() + ")"});
    }
  }
}

// Inline code spans that look like specs. Classification and validation
// against the six live registries live in tools/check_common.cpp, shared
// with rhw_lint — the two checkers must agree on what a stale spec is.
void check_specs(const fs::path& md, const std::string& text,
                 std::vector<Failure>& failures, size_t& checked) {
  static const std::regex span_re(R"(`([^`\n]+)`)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), span_re);
       it != std::sregex_iterator(); ++it) {
    const std::string span = (*it)[1].str();
    std::string error;
    const rhw::check::SpecVerdict verdict =
        rhw::check::check_spec_span(span, &error);
    if (verdict == rhw::check::SpecVerdict::kNotASpec) continue;  // a word
    ++checked;
    if (verdict == rhw::check::SpecVerdict::kStale) {
      failures.push_back({md.string(), "stale spec `" + span + "`: " + error});
    }
  }
}

// `rhw_run <preset> [overrides...]` commands — inline spans AND fenced
// command lines ("$ rhw_run ...", "build/rhw_run ..."): resolve the preset,
// apply every override token, validate the resulting experiment spec — so
// the docs' override cookbook stays executable. Commands containing
// placeholders (<...>, "...") are skipped like elsewhere.
void check_experiment_commands(const fs::path& md, const std::string& text,
                               std::vector<Failure>& failures,
                               size_t& checked) {
  static const std::regex span_re(R"(`rhw_run ([^`\n]+)`)");
  static const std::regex line_re(
      R"((?:^|\n)\s*\$?\s*(?:build/)?rhw_run ([^\n]+))");
  std::vector<std::string> bodies;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), span_re);
       it != std::sregex_iterator(); ++it) {
    bodies.push_back((*it)[1].str());
  }
  for (auto it = std::sregex_iterator(text.begin(), text.end(), line_re);
       it != std::sregex_iterator(); ++it) {
    bodies.push_back((*it)[1].str());
  }
  for (std::string body : bodies) {
    if (body.find('<') != std::string::npos ||
        body.find("...") != std::string::npos) {
      continue;  // placeholder, not an exact example
    }
    // Shell comments after the command don't take part in the override list.
    if (const size_t hash = body.find(" #"); hash != std::string::npos) {
      body = body.substr(0, hash);
    }
    std::istringstream is(body);
    std::vector<std::string> tokens;
    std::string tok;
    while (is >> tok) tokens.push_back(tok);
    if (tokens.empty() || tokens[0] == "--list" || tokens[0] == "--help") {
      continue;  // meta flags, no spec to validate
    }
    ++checked;
    try {
      // Mirror rhw_run_main: "--" tokens anywhere are run flags (validated
      // through the same parser, so a cookbook typo like --shard=3/2 fails
      // here too); the first bare token names the preset, the rest override.
      rhw::exp::RunOptions run;
      std::string preset;
      std::vector<std::string> overrides;
      for (const auto& t : tokens) {
        if (t.rfind("--", 0) == 0) {
          if (!rhw::exp::parse_run_flag(t, run)) {
            throw std::invalid_argument("unknown rhw_run flag '" + t + "'");
          }
        } else if (preset.empty()) {
          preset = t;
        } else {
          overrides.push_back(t);
        }
      }
      if (preset.empty()) continue;  // flags only, nothing to resolve
      rhw::exp::ExperimentSpec spec =
          rhw::exp::ExperimentRegistry::instance().preset(preset);
      for (const auto& token : overrides) spec.apply_override(token);
      spec.validate();
    } catch (const std::exception& e) {
      failures.push_back(
          {md.string(), "stale command `rhw_run " + body + "`: " + e.what()});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(RHW_SOURCE_DIR);
  std::vector<fs::path> files;
  for (const char* name : {"README.md", "ROADMAP.md"}) {
    if (fs::exists(root / name)) files.push_back(root / name);
  }
  if (fs::exists(root / "docs")) {
    for (const auto& entry : fs::directory_iterator(root / "docs")) {
      if (entry.path().extension() == ".md") files.push_back(entry.path());
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "docs_check: no markdown files under %s\n",
                 root.string().c_str());
    return 1;
  }

  std::vector<Failure> failures;
  size_t links_checked = 0;
  size_t specs_checked = 0;
  size_t commands_checked = 0;
  for (const auto& md : files) {
    const std::string text = read_file(md);
    check_links(md, text, failures, links_checked);
    check_specs(md, text, failures, specs_checked);
    check_experiment_commands(md, text, failures, commands_checked);
  }

  std::printf(
      "docs_check: %zu file(s), %zu link(s), %zu spec(s), %zu rhw_run "
      "command(s) checked\n",
      files.size(), links_checked, specs_checked, commands_checked);
  for (const auto& f : failures) {
    std::fprintf(stderr, "docs_check: %s: %s\n", f.file.c_str(),
                 f.what.c_str());
  }
  // The floor catches a scanner regression that silently matches nothing
  // (e.g. a docs reshuffle that drops every exact spec example).
  if (specs_checked < 10) {
    std::fprintf(stderr,
                 "docs_check: only %zu spec string(s) found — expected the "
                 "docs to carry at least 10 exact spec examples\n",
                 specs_checked);
    return 1;
  }
  if (links_checked < 3) {
    std::fprintf(stderr,
                 "docs_check: only %zu intra-repo link(s) found — expected "
                 "at least 3\n",
                 links_checked);
    return 1;
  }
  // docs/EXPERIMENTS.md's cookbook must keep exact, checkable commands.
  if (commands_checked < 3) {
    std::fprintf(stderr,
                 "docs_check: only %zu exact `rhw_run ...` command(s) found "
                 "— expected the docs to carry at least 3\n",
                 commands_checked);
    return 1;
  }
  return failures.empty() ? 0 : 1;
}
