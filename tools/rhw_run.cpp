// rhw_run: the single experiment driver. Every figure, table and example of
// the reproduction is a named preset in exp::ExperimentRegistry; this binary
// resolves one, applies declarative overrides, runs the sweep, and emits the
// table / ASCII-plot / rhw-sweep-v4 JSON artifacts. New (backend x defense x
// attack) scenarios are command lines, not new binaries.
//
//   $ rhw_run --list
//   $ rhw_run sweep_smoke
//   $ rhw_run fig8bc trials=5 backends+=xbar:rmin=1e5+smooth:sigma=0.25
//   $ rhw_run serve_curve qps=100,400,1600 lanes=8
//   $ rhw_run --shard=0/3 fig8bc          # 1 of 3 partitions -> rhw_merge
//   $ rhw_run --resume fig8bc             # continue from <out>.partial/
//   $ rhw_run --dry-run --shard=1/3 fig8bc  # print the cell enumeration
//
// Serving presets (serve=1) drive serve::Server + serve::LoadGen instead of
// the sweep engine and write rhw-serve-v1 latency curves (docs/SERVING.md).
// --shard=i/n deterministically partitions the expanded cell grid (union of
// any n shards is bit-identical to the unsharded run; fuse shard artifacts
// with rhw_merge); every sweep run journals completed cells into
// <out>.partial/ so an interrupted run continues with --resume.
// docs/EXPERIMENTS.md has the grammar, every preset, and an override
// cookbook.
#include <string>
#include <vector>

#include "exp/experiment_registry.hpp"

int main(int argc, char** argv) {
  return rhw::exp::rhw_run_main(std::vector<std::string>(argv + 1,
                                                         argv + argc));
}
