// rhw_merge: fuses rhw-sweep-v4 shard artifacts back into the full grid.
//
//   $ rhw_merge -o BENCH_fig8bc_merged.json BENCH_fig8bc_*_shard*of3.json
//   $ rhw_merge --payload BENCH_fig8bc_merged.json
//   $ rhw_merge --diff BENCH_a.json BENCH_b.json
//
// Merge refuses mismatched canonical specs, engine stamps, schema versions,
// duplicate cells and incomplete unions — each with a token-precise error on
// stderr. The merged artifact's aggregates are recomputed with the same
// trial-ordered reduction the sweep engine uses, so merging the shards of a
// run yields a results payload byte-identical to the unsharded run.
//
// --payload prints an artifact's results payload (the experiment-independent
// fields: no stamp, lanes or wall_seconds) to stdout — `cmp` two payloads to
// assert run equivalence. --diff renders the canonical-spec difference of
// two artifacts' embedded experiment stamps as -/+ lines; exit 0 when the
// specs agree, 1 when they differ (the diff convention).
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <vector>

#include "exp/artifact.hpp"
#include "exp/sweep.hpp"

namespace {

int usage(int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: rhw_merge -o <merged.json> <shard.json> [<shard.json> ...]\n"
      "       rhw_merge --payload <artifact.json>\n"
      "       rhw_merge --diff <a.json> <b.json>\n\n"
      "Fuses rhw-sweep-v4 shard artifacts (rhw_run --shard=i/n) into one\n"
      "full-grid artifact; refuses mismatched canonical specs, engine\n"
      "stamps, schema versions, duplicate or missing cells. --payload\n"
      "prints the experiment-independent results payload for byte-wise\n"
      "comparison; --diff prints the canonical-spec difference between two\n"
      "artifacts.\n");
  return code;
}

int run_merge(const std::string& out, const std::vector<std::string>& paths) {
  std::vector<rhw::exp::SweepArtifact> shards;
  shards.reserve(paths.size());
  for (const auto& path : paths) {
    shards.push_back(rhw::exp::load_sweep_artifact(path));
  }
  std::string figure;
  const rhw::exp::SweepResult merged =
      rhw::exp::merge_artifacts(shards, &figure);
  merged.write_json(out, figure);
  std::printf("rhw_merge: %s <- %zu shard(s), %zu cells\n", out.c_str(),
              shards.size(), merged.cells.size());
  return 0;
}

int run_payload(const std::string& path) {
  const rhw::exp::SweepArtifact artifact = rhw::exp::load_sweep_artifact(path);
  std::ostringstream os;
  artifact.result.write_json(os, artifact.figure, /*payload_only=*/true);
  os << '\n';
  std::fputs(os.str().c_str(), stdout);
  return 0;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const rhw::exp::SweepArtifact a = rhw::exp::load_sweep_artifact(path_a);
  const rhw::exp::SweepArtifact b = rhw::exp::load_sweep_artifact(path_b);
  const std::string diff = rhw::exp::diff_artifacts(a, b);
  if (diff.empty()) {
    std::printf("rhw_merge: identical canonical specs\n");
    return 0;
  }
  std::fputs(diff.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty() || args[0] == "--help" || args[0] == "-h") {
      return usage(args.empty() ? 1 : 0);
    }
    if (args[0] == "--payload") {
      if (args.size() != 2) return usage(1);
      return run_payload(args[1]);
    }
    if (args[0] == "--diff") {
      if (args.size() != 3) return usage(1);
      return run_diff(args[1], args[2]);
    }
    if (args[0] == "-o") {
      if (args.size() < 3) return usage(1);
      return run_merge(args[1], {args.begin() + 2, args.end()});
    }
    std::fprintf(stderr, "rhw_merge: unknown argument '%s' (try --help)\n",
                 args[0].c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rhw_merge: %s\n", e.what());
    return 1;
  }
}
