// Shared helpers behind the repo's static checkers: tools/docs_check.cpp
// (markdown), tools/rhw_lint.cpp (source) and tests/lint/test_rhw_lint.cpp.
//
// One implementation of
//   * spec-span validation against the six live registries (hw, attacks,
//     defenses, engines, datasets, experiments) — docs_check and rhw_lint
//     must agree
//     on what a stale spec is, so the logic lives here once;
//   * registry <-> doc parity (every registered key documented, every
//     documented key registered);
//   * the source lint rules (determinism contract, wall-clock reads, spec
//     literals) with the `// rhw-lint: allow(<rule>)` escape hatch.
//
// docs/LINT.md documents the rules and the allow-comment syntax.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace rhw::check {

struct Failure {
  std::string file;
  std::string what;
};

std::string read_file(const std::filesystem::path& path);

// -- spec validation ----------------------------------------------------------

// Strict spec shape: `key` or `key:opt=v(,opt=v)*`, lowercase key, no spaces,
// ellipses or placeholders. Spans that don't match are "just words" and are
// never validated (docs keep exact, parseable examples so checks have teeth).
bool looks_like_spec(const std::string& span);

enum class SpecVerdict {
  kNotASpec,  // wrong shape, or key not in any registry: skip silently
  kOk,        // names a registered key and parses/validates
  kStale,     // names a registered key but no longer parses/validates
};

// Classifies `span` against the six registries (backend, attack, defense,
// engine, dataset; experiment presets match bare keys only) and validates it
// through
// the matching factory. On kStale, *error (if non-null) carries the factory
// message. Verdicts are memoized per span: the registries are immutable once
// loaded, and hot keys like "ideal" appear hundreds of times.
SpecVerdict check_spec_span(const std::string& span, std::string* error);

// -- registry <-> doc parity --------------------------------------------------

// Keys documented as "### `key` — ..." headings (BACKENDS/ATTACKS/DEFENSES/
// ENGINES style) or as "| `key` | ..." first-cell table rows (EXPERIMENTS
// preset table style).
std::vector<std::string> doc_heading_keys(const std::string& doc_text);
std::vector<std::string> doc_table_keys(const std::string& doc_text);

// Both directions for one registry: every key in `registered` must appear in
// `documented` and vice versa. Appends one Failure per missing key.
void check_parity(const std::string& registry_name,
                  const std::vector<std::string>& registered,
                  const std::vector<std::string>& documented,
                  const std::string& doc_file, std::vector<Failure>& failures);

// All six registries against their docs/ tables under `root`; `checked`
// counts the (registry, doc) pairs examined (a missing doc file is a
// Failure, not a silent skip).
void check_registry_doc_parity(const std::filesystem::path& root,
                               std::vector<Failure>& failures,
                               size_t& checked);

// -- source lint --------------------------------------------------------------

struct LintDiag {
  std::string file;
  size_t line = 0;   // 1-based
  std::string rule;  // "rng" | "wallclock" | "spec" | "allow"
  std::string what;
};

struct LintStats {
  size_t files = 0;
  size_t spec_literals = 0;  // string literals validated against registries
  size_t allows_used = 0;    // allow() comments that suppressed a finding
};

// Lints one source file (already-read text; `display_path` labels
// diagnostics). Rules:
//   rng       — std RNG machinery (std::random_device, rand()/srand(),
//               std::mt19937 et al., time(nullptr) seeds). All randomness
//               must flow through rhw::RandomEngine + derive_stream_seed.
//   wallclock — wall-clock reads (system_clock::now, gettimeofday,
//               clock_gettime(CLOCK_REALTIME)). steady_clock is fine:
//               elapsed-time measurement is monotonic, not wall-clock.
//   spec      — registry spec string literals that no longer parse/validate.
//   allow     — an `// rhw-lint: allow(<rule>)` comment that names an
//               unknown rule or suppresses nothing (stale allows rot).
// An allow comment on the finding's line or the line directly above it
// suppresses the finding. Comments are stripped before pattern matching;
// string literals are scanned (that's where spec literals live).
void lint_source(const std::string& display_path, const std::string& text,
                 std::vector<LintDiag>& diags, LintStats& stats);

// Walks src/ tests/ bench/ examples/ tools/ under `root`, linting every
// .cpp/.hpp/.h file. Directories named "fixtures" are skipped — they hold
// intentionally-violating lint test inputs.
void lint_tree(const std::filesystem::path& root, std::vector<LintDiag>& diags,
               LintStats& stats);

}  // namespace rhw::check
