#include "check_common.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "attacks/registry.hpp"
#include "core/engine_registry.hpp"
#include "data/registry.hpp"
#include "defenses/registry.hpp"
#include "exp/experiment_registry.hpp"
#include "hw/registry.hpp"

namespace fs = std::filesystem;

namespace rhw::check {

std::string read_file(const fs::path& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// -- spec validation ----------------------------------------------------------

bool looks_like_spec(const std::string& span) {
  static const std::regex spec_re(
      R"(^([a-z_][a-z0-9_-]*)(:[A-Za-z0-9_]+=[A-Za-z0-9_.+\-/]+(,[A-Za-z0-9_]+=[A-Za-z0-9_.+\-/]+)*)?$)");
  return std::regex_match(span, spec_re);
}

SpecVerdict check_spec_span(const std::string& span, std::string* error) {
  if (!looks_like_spec(span)) return SpecVerdict::kNotASpec;

  // Memo: registries are immutable once loaded and hot keys ("ideal",
  // "fgsm") recur hundreds of times across the tree.
  static std::map<std::string, std::pair<SpecVerdict, std::string>> memo;
  if (const auto it = memo.find(span); it != memo.end()) {
    if (error != nullptr) *error = it->second.second;
    return it->second.first;
  }

  const std::string key = span.substr(0, span.find(':'));
  const bool is_backend = rhw::hw::BackendRegistry::instance().contains(key);
  const bool is_attack = rhw::attacks::AttackRegistry::instance().contains(key);
  const bool is_defense =
      rhw::defenses::DefenseRegistry::instance().contains(key);
  const bool is_engine = rhw::core::EngineRegistry::instance().contains(key);
  const bool is_dataset = rhw::data::DatasetRegistry::instance().contains(key);
  // Experiment presets take no colon options; only bare keys match.
  const bool is_experiment =
      span == key && rhw::exp::ExperimentRegistry::instance().contains(key);

  SpecVerdict verdict = SpecVerdict::kNotASpec;
  std::string message;
  if (is_backend || is_attack || is_defense || is_engine || is_dataset ||
      is_experiment) {
    try {
      if (is_backend) {
        (void)rhw::hw::make_backend(span);
      } else if (is_attack) {
        (void)rhw::attacks::make_attack(span);
      } else if (is_defense) {
        (void)rhw::defenses::make_defense(span);
      } else if (is_engine) {
        (void)rhw::core::make_engine(span);
      } else if (is_dataset) {
        // Construction is filesystem-free: dir= paths validate without I/O.
        (void)rhw::data::make_dataset_provider(span);
      } else {
        rhw::exp::ExperimentRegistry::instance().preset(span).validate();
      }
      verdict = SpecVerdict::kOk;
    } catch (const std::exception& e) {
      verdict = SpecVerdict::kStale;
      message = e.what();
    }
  }
  memo.emplace(span, std::make_pair(verdict, message));
  if (error != nullptr) *error = message;
  return verdict;
}

// -- registry <-> doc parity --------------------------------------------------

std::vector<std::string> doc_heading_keys(const std::string& doc_text) {
  // "### `key` — ..." section headings (the registry-key convention in
  // docs/BACKENDS.md, ATTACKS.md, DEFENSES.md, ENGINES.md and DATASETS.md;
  // hyphens cover the legacy dataset keys "synth-c10"/"synth-c100").
  static const std::regex heading_re(
      R"((?:^|\n)###\s+`([a-z_][a-z0-9_-]*)`)");
  std::vector<std::string> keys;
  for (auto it = std::sregex_iterator(doc_text.begin(), doc_text.end(),
                                      heading_re);
       it != std::sregex_iterator(); ++it) {
    keys.push_back((*it)[1].str());
  }
  return keys;
}

std::vector<std::string> doc_table_keys(const std::string& doc_text) {
  // "| `key` | ..." first-cell table rows (the preset table in
  // docs/EXPERIMENTS.md). Cells carrying options or override syntax
  // (`=`, `+`, `:`) don't match the bare-key grammar and are skipped.
  static const std::regex row_re(R"((?:^|\n)\|\s*`([a-z_][a-z0-9_]*)`\s*\|)");
  std::vector<std::string> keys;
  for (auto it = std::sregex_iterator(doc_text.begin(), doc_text.end(),
                                      row_re);
       it != std::sregex_iterator(); ++it) {
    keys.push_back((*it)[1].str());
  }
  return keys;
}

void check_parity(const std::string& registry_name,
                  const std::vector<std::string>& registered,
                  const std::vector<std::string>& documented,
                  const std::string& doc_file, std::vector<Failure>& failures) {
  const std::set<std::string> reg(registered.begin(), registered.end());
  const std::set<std::string> doc(documented.begin(), documented.end());
  for (const std::string& key : reg) {
    if (doc.count(key) == 0) {
      failures.push_back({doc_file, registry_name + " key `" + key +
                                        "` is registered but has no key "
                                        "section/row in " +
                                        doc_file});
    }
  }
  for (const std::string& key : doc) {
    if (reg.count(key) == 0) {
      failures.push_back({doc_file, registry_name + " key `" + key +
                                        "` is documented in " + doc_file +
                                        " but not registered"});
    }
  }
}

void check_registry_doc_parity(const fs::path& root,
                               std::vector<Failure>& failures,
                               size_t& checked) {
  // Preset validation registers runtime backend keys (fig5's
  // `sram_selected` / fig5w's `sram_weight_noise` stand-ins). Force it for
  // every preset up front so the key set — and therefore this check — does
  // not depend on which spec literals happened to be validated earlier.
  // Presets that fail to validate are someone else's failure (rhw_run
  // --list, docs_check); parity only needs the registration side effect.
  for (const std::string& key :
       rhw::exp::ExperimentRegistry::instance().keys()) {
    try {
      rhw::exp::ExperimentRegistry::instance().preset(key).validate();
    } catch (const std::exception&) {
    }
  }

  struct Pair {
    std::string name;
    std::vector<std::string> keys;
    const char* doc;
    bool table;  // false: heading style
  };
  const Pair pairs[] = {
      {"backend", rhw::hw::BackendRegistry::instance().keys(),
       "docs/BACKENDS.md", false},
      {"attack", rhw::attacks::AttackRegistry::instance().keys(),
       "docs/ATTACKS.md", false},
      {"defense", rhw::defenses::DefenseRegistry::instance().keys(),
       "docs/DEFENSES.md", false},
      {"engine", rhw::core::EngineRegistry::instance().keys(),
       "docs/ENGINES.md", false},
      {"dataset", rhw::data::DatasetRegistry::instance().keys(),
       "docs/DATASETS.md", false},
      {"experiment", rhw::exp::ExperimentRegistry::instance().keys(),
       "docs/EXPERIMENTS.md", true},
  };
  for (const Pair& p : pairs) {
    const fs::path doc_path = root / p.doc;
    if (!fs::exists(doc_path)) {
      failures.push_back({p.doc, p.name + " registry has no doc file " +
                                     p.doc + " to check parity against"});
      continue;
    }
    ++checked;
    const std::string text = read_file(doc_path);
    check_parity(p.name, p.keys,
                 p.table ? doc_table_keys(text) : doc_heading_keys(text),
                 p.doc, failures);
  }
}

// -- source lint --------------------------------------------------------------

namespace {

// Blanks comments (preserving newlines) so rule patterns never fire on
// prose; string and char literals survive — spec literals live there.
// Handles //, /* */, '...', "..." with escapes, and R"delim(...)delim".
std::string strip_comments(const std::string& text) {
  std::string out = text;
  const size_t n = text.size();
  size_t i = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') out[i++] = ' ';
    } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      out[i] = out[i + 1] = ' ';
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] != '\n') out[i] = ' ';
        ++i;
      }
      if (i + 1 < n) {
        out[i] = out[i + 1] = ' ';
        i += 2;
      } else {
        i = n;
      }
    } else if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      // Raw string: R"delim( ... )delim"
      size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string close = ")" + delim + "\"";
      const size_t end = text.find(close, p);
      i = end == std::string::npos ? n : end + close.size();
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        ++i;
      }
      if (i < n) ++i;
    } else {
      ++i;
    }
  }
  return out;
}

size_t line_of(const std::string& text, size_t pos) {
  return 1 + static_cast<size_t>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

struct AllowEntry {
  std::string rule;
  size_t line;
  bool used = false;
};

// Parses `// rhw-lint: allow(rule[, rule...])` comments out of the raw
// lines. Lines that merely mention the marker without a literal "allow("
// following it (e.g. this scanner's own pattern strings) are ignored;
// unknown rule names become "allow" diagnostics at the caller.
std::vector<AllowEntry> scan_allows(const std::string& text) {
  std::vector<AllowEntry> allows;
  static const std::regex allow_re(
      R"(rhw-lint:\s*allow\(\s*([a-z_]+(?:\s*,\s*[a-z_]+)*)\s*\))");
  std::istringstream is(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::smatch m;
    if (!std::regex_search(line, m, allow_re)) continue;
    std::string rules = m[1].str();
    std::replace(rules.begin(), rules.end(), ',', ' ');
    std::istringstream rs(rules);
    std::string rule;
    while (rs >> rule) allows.push_back({rule, lineno, false});
  }
  return allows;
}

struct Pattern {
  const char* rule;
  std::regex re;
  const char* why;
};

// The determinism / wall-clock pattern tables. Anchored on "std::" or a
// word boundary so the pattern sources themselves (which contain the bare
// token preceded by escapes) never self-match when this file is linted.
const std::vector<Pattern>& patterns() {
  static const std::vector<Pattern> pats = {
      {"rng", std::regex(R"(std\s*::\s*random_device)"),
       "nondeterministic seed source; derive seeds via "
       "rhw::derive_stream_seed from the experiment seed"},
      {"rng", std::regex(R"(\bsrand\s*\()"),
       "global C RNG; use a caller-owned rhw::RandomEngine"},
      {"rng", std::regex(R"(\brand\s*\(\s*\))"),
       "global C RNG; use a caller-owned rhw::RandomEngine"},
      {"rng",
       std::regex(
           R"(std\s*::\s*(mt19937(_64)?|minstd_rand0?|default_random_engine|ranlux\w+|knuth_b))"),
       "std RNG engine; all repo randomness flows through rhw::RandomEngine "
       "so streams reseed/fork deterministically"},
      {"rng", std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
       "wall-clock seed; experiments must be bit-reproducible from their "
       "recorded seed"},
      {"wallclock", std::regex(R"(system_clock\s*::\s*now)"),
       "wall-clock read; use steady_clock for elapsed time so artifacts "
       "don't depend on the host clock"},
      {"wallclock", std::regex(R"(\bgettimeofday\s*\()"),
       "wall-clock read; use steady_clock for elapsed time"},
      {"wallclock", std::regex(R"(clock_gettime\s*\(\s*CLOCK_REALTIME)"),
       "wall-clock read; use steady_clock (CLOCK_MONOTONIC) for elapsed "
       "time"},
  };
  return pats;
}

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {"rng", "wallclock", "spec"};
  return rules;
}

}  // namespace

void lint_source(const std::string& display_path, const std::string& text,
                 std::vector<LintDiag>& diags, LintStats& stats) {
  ++stats.files;
  std::vector<AllowEntry> allows = scan_allows(text);
  for (const AllowEntry& a : allows) {
    if (known_rules().count(a.rule) == 0) {
      diags.push_back({display_path, a.line, "allow",
                       "allow(" + a.rule + ") names an unknown rule; known: "
                       "rng, wallclock, spec"});
    }
  }
  // An allow on the finding's line or the line directly above suppresses it.
  // Same-line entries take precedence over line-above ones so stacked
  // allows on consecutive lines each cover their own line's finding.
  auto consume_allow = [&allows](const std::string& rule, size_t line) {
    for (AllowEntry& a : allows) {
      if (a.rule == rule && a.line == line) {
        a.used = true;
        return true;
      }
    }
    for (AllowEntry& a : allows) {
      if (a.rule == rule && a.line + 1 == line) {
        a.used = true;
        return true;
      }
    }
    return false;
  };

  const std::string code = strip_comments(text);
  for (const Pattern& p : patterns()) {
    for (auto it = std::sregex_iterator(code.begin(), code.end(), p.re);
         it != std::sregex_iterator(); ++it) {
      const size_t line = line_of(code, static_cast<size_t>(it->position()));
      if (consume_allow(p.rule, line)) {
        ++stats.allows_used;
        continue;
      }
      diags.push_back({display_path, line, p.rule,
                       "`" + it->str() + "`: " + p.why});
    }
  }

  // Spec literals: every double-quoted string with the strict spec shape
  // whose key names a registered key must parse/validate — the docs-only
  // guarantee (docs_check) extended to every test, bench and example.
  static const std::regex string_re(R"re("((?:[^"\\\n]|\\.)*)")re");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), string_re);
       it != std::sregex_iterator(); ++it) {
    const std::string literal = (*it)[1].str();
    std::string error;
    const SpecVerdict verdict = check_spec_span(literal, &error);
    if (verdict == SpecVerdict::kNotASpec) continue;
    ++stats.spec_literals;
    if (verdict == SpecVerdict::kOk) continue;
    const size_t line = line_of(code, static_cast<size_t>(it->position()));
    if (consume_allow("spec", line)) {
      ++stats.allows_used;
      continue;
    }
    diags.push_back({display_path, line, "spec",
                     "stale spec \"" + literal + "\": " + error});
  }

  for (const AllowEntry& a : allows) {
    if (!a.used && known_rules().count(a.rule) > 0) {
      diags.push_back({display_path, a.line, "allow",
                       "allow(" + a.rule + ") suppresses nothing; stale "
                       "allows rot — delete it"});
    }
  }
}

void lint_tree(const fs::path& root, std::vector<LintDiag>& diags,
               LintStats& stats) {
  static const std::set<std::string> exts = {".cpp", ".hpp", ".h"};
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();  // lint-test inputs violate on purpose
        continue;
      }
      if (it->is_regular_file() &&
          exts.count(it->path().extension().string()) > 0) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    lint_source(fs::relative(file, root).string(), read_file(file), diags,
                stats);
  }
}

}  // namespace rhw::check
