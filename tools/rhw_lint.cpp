// Repo-wide static lint: extends the docs-only guarantees (tools/docs_check)
// to every source file. Fails on
//
//   * determinism-contract violations — std RNG machinery, wall-clock-seeded
//     generators, wall-clock reads — anywhere under src/, tests/, bench/,
//     examples/, tools/. All repo randomness flows through rhw::RandomEngine
//     seeded via derive_stream_seed (the reproducibility contract from
//     docs/ARCHITECTURE.md), so sweeps stay bit-identical at any lane count;
//   * registry spec string literals ("pgd:...", "xbar:...", "smooth:...",
//     "simd:...", preset names) that no longer parse/validate against the
//     six live registries — a renamed knob breaks this lint, not a test at
//     runtime (or worse, a bench silently measuring the wrong thing);
//   * registry <-> doc parity — every registered key must have its key
//     section/row in the matching docs/*.md and vice versa;
//   * stale or unknown `// rhw-lint: allow(<rule>)` comments.
//
// An explicit `// rhw-lint: allow(<rule>)` comment on the offending line (or
// the line directly above) whitelists a finding; docs/LINT.md documents the
// rules and the syntax. Directories named "fixtures" are skipped — they hold
// this tool's intentionally-violating test inputs (tests/lint/).
//
// Header hygiene (every public header compiles standalone) is the build's
// half of the contract: CMake generates one TU per src/ header into the
// `header_hygiene` target, so a header that stops being self-contained
// breaks the build rather than the next include site.
//
//   $ ./rhw_lint [repo_root]     # root defaults to RHW_SOURCE_DIR
#include <cstdio>
#include <filesystem>
#include <vector>

#include "check_common.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path root =
      argc > 1 ? std::filesystem::path(argv[1])
               : std::filesystem::path(RHW_SOURCE_DIR);

  std::vector<rhw::check::LintDiag> diags;
  rhw::check::LintStats stats;
  rhw::check::lint_tree(root, diags, stats);

  std::vector<rhw::check::Failure> parity;
  size_t parity_checked = 0;
  rhw::check::check_registry_doc_parity(root, parity, parity_checked);

  std::printf(
      "rhw_lint: %zu file(s), %zu spec literal(s) validated, %zu allow(s) "
      "honored, %zu registry/doc pair(s) checked\n",
      stats.files, stats.spec_literals, stats.allows_used, parity_checked);
  for (const auto& d : diags) {
    std::fprintf(stderr, "rhw_lint: %s:%zu: [%s] %s\n", d.file.c_str(), d.line,
                 d.rule.c_str(), d.what.c_str());
  }
  for (const auto& f : parity) {
    std::fprintf(stderr, "rhw_lint: %s: [parity] %s\n", f.file.c_str(),
                 f.what.c_str());
  }

  // Floors guard against scanner regressions that silently match nothing
  // (a glob typo walking zero files would otherwise read as a clean tree).
  bool floor_failed = false;
  if (stats.files < 100) {
    std::fprintf(stderr,
                 "rhw_lint: only %zu source file(s) walked — expected the "
                 "tree to hold at least 100\n",
                 stats.files);
    floor_failed = true;
  }
  if (stats.spec_literals < 40) {
    std::fprintf(stderr,
                 "rhw_lint: only %zu spec literal(s) validated — expected "
                 "tests/benches/examples to carry at least 40\n",
                 stats.spec_literals);
    floor_failed = true;
  }
  if (parity_checked < 6) {
    std::fprintf(stderr,
                 "rhw_lint: only %zu registry/doc pair(s) checked — all six "
                 "registries must have a docs table\n",
                 parity_checked);
    floor_failed = true;
  }
  return (diags.empty() && parity.empty() && !floor_failed) ? 0 : 1;
}
